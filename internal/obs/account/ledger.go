// Package account implements the leak-freedom auditor: a live page
// ownership ledger over the allocator's page lifecycle feed, attributing
// every allocated object page and every user-mapping reference to a
// container, plus per-container charged-cycle totals.
//
// The ledger is the incremental counterpart of verify.MemoryWF's
// snapshot-based closure check: the kernel tells it which container each
// transition acts for (the attribution context), the allocator tells it
// which page moved, and Audit compares the mirrored state against the
// allocator's ground truth — the paper's closure invariant (per-container
// closures disjoint, their union exactly the allocated set), checkable at
// any point of a run instead of only at quiescence.
//
// Like the tracer, everything here is nil-safe (every method on a nil
// *Ledger is a no-op) and charges zero simulated cycles: the ledger only
// ever reads clocks and allocator metadata, so attaching it cannot move
// a benchmark number (bench.TestTracingIsFree holds Table 3 to that).
package account

import (
	"fmt"
	"sort"

	"atmosphere/internal/hw"
	"atmosphere/internal/mem"
	"atmosphere/internal/obs"
)

// InFlight is the pseudo-container holding IPC page references that are
// in transit between a sender and a receiver. Real container identifiers
// are page-aligned physical addresses, so 1 can never collide.
const InFlight = hw.PhysAddr(1)

// PageCache is the pseudo-container owning frames parked in the
// per-core page-frame caches (mem.CoreCaches). Cached frames belong to
// no real container — they were given back, or not yet handed out — but
// they are not free either, so the closure accounting needs a place to
// hold them. Like InFlight, the value can never collide with a real
// container pointer (those are page-aligned).
const PageCache = hw.PhysAddr(2)

// ContainerStat is one container's live accounting state. Page counts
// are in 4 KiB units (a 2 MiB user mapping counts 512).
type ContainerStat struct {
	ObjPages  uint64 // kernel-object and table pages allocated for it
	UserPages uint64 // user pages it holds at least one mapping ref on
	Cycles    uint64 // kernel/driver cycles charged to it
}

// ContainerRow is one row of a ledger snapshot, sorted for display.
type ContainerRow struct {
	Cntr hw.PhysAddr
	Name string
	ContainerStat
}

// Pages returns the row's total page count in 4 KiB units.
func (r ContainerRow) Pages() uint64 { return r.ObjPages + r.UserPages }

// Ledger is the live ownership ledger. Bind installs it on a kernel's
// allocator; the kernel sets the attribution context around each syscall
// and the allocator feeds transitions through PageEvent.
type Ledger struct {
	alloc *mem.Allocator
	ctx   hw.PhysAddr // attribution context (0 = unattributed)

	owner   map[hw.PhysAddr]hw.PhysAddr            // object page -> container
	holders map[hw.PhysAddr]map[hw.PhysAddr]uint32 // user page -> container -> refs
	sizes   map[hw.PhysAddr]mem.SizeClass          // user page -> granularity
	stats   map[hw.PhysAddr]*ContainerStat
	names   map[hw.PhysAddr]string
	retired []ContainerRow // dead named containers (pointer may be recycled)

	live      uint64 // live pages in 4 KiB units (object + user)
	watermark uint64 // peak of live

	audits     uint64
	auditFails uint64
	anomalies  uint64 // events the ledger could not attribute exactly

	auditEvery uint64 // MaybeAudit period (0 = never)
	auditTick  uint64
	lastErr    error
}

// NewLedger builds an empty, unbound ledger.
func NewLedger() *Ledger {
	return &Ledger{
		owner:   make(map[hw.PhysAddr]hw.PhysAddr),
		holders: make(map[hw.PhysAddr]map[hw.PhysAddr]uint32),
		sizes:   make(map[hw.PhysAddr]mem.SizeClass),
		stats:   make(map[hw.PhysAddr]*ContainerStat),
		names:   make(map[hw.PhysAddr]string),
	}
}

// Bind resets the ledger, installs it as alloc's page observer, and
// seeds the mirror from the allocator's current state, attributing every
// already-live page to seed (the root container): pages allocated before
// attach — the boot environment, the root container object — belong to
// the root by definition.
func (l *Ledger) Bind(alloc *mem.Allocator, seed hw.PhysAddr) {
	if l == nil {
		return
	}
	l.alloc = alloc
	l.ctx = 0
	l.owner = make(map[hw.PhysAddr]hw.PhysAddr)
	l.holders = make(map[hw.PhysAddr]map[hw.PhysAddr]uint32)
	l.sizes = make(map[hw.PhysAddr]mem.SizeClass)
	l.stats = make(map[hw.PhysAddr]*ContainerStat)
	l.retired = nil
	l.live, l.watermark = 0, 0
	l.lastErr = nil
	snap := alloc.Snapshot()
	for _, p := range snap.Allocated.Sorted() {
		l.owner[p] = seed
		l.stat(seed).ObjPages++
		l.live++
	}
	for _, p := range snap.Mapped.Sorted() {
		meta, err := alloc.Meta(p)
		if err != nil {
			continue
		}
		l.holders[p] = map[hw.PhysAddr]uint32{seed: meta.RefCount}
		l.sizes[p] = meta.Size
		n := pages4K(meta.Size)
		l.stat(seed).UserPages += n
		l.live += n
	}
	l.watermark = l.live
	alloc.SetObserver(l.PageEvent)
}

// stat returns (creating) the container's stat block.
func (l *Ledger) stat(c hw.PhysAddr) *ContainerStat {
	s, ok := l.stats[c]
	if !ok {
		s = &ContainerStat{}
		l.stats[c] = s
	}
	return s
}

func pages4K(sc mem.SizeClass) uint64 { return sc.Bytes() / hw.PageSize4K }

// SetContext sets the attribution context: the container the next page
// transitions act for. The kernel sets it when a syscall resolves its
// caller (and overrides it at the few sites where the affected container
// differs from the caller); 0 means unattributed.
func (l *Ledger) SetContext(c hw.PhysAddr) {
	if l != nil {
		l.ctx = c
	}
}

// SwapContext sets the context and returns the previous one, for sites
// that scope an override around a single allocator call.
func (l *Ledger) SwapContext(c hw.PhysAddr) hw.PhysAddr {
	if l == nil {
		return 0
	}
	prev := l.ctx
	l.ctx = c
	return prev
}

// PageEvent is the allocator observer: it mirrors one page lifecycle
// transition into the ledger under the current attribution context.
func (l *Ledger) PageEvent(op mem.PageOp, p hw.PhysAddr, sc mem.SizeClass) {
	if l == nil {
		return
	}
	switch op {
	case mem.OpAllocObj:
		l.owner[p] = l.ctx
		l.stat(l.ctx).ObjPages++
		l.bumpLive(1)
	case mem.OpFreeObj:
		c, ok := l.owner[p]
		if !ok {
			l.anomalies++
			return
		}
		delete(l.owner, p)
		l.stat(c).ObjPages--
		l.live--
		l.retireIfDead(p)
	case mem.OpAllocUser:
		l.holders[p] = map[hw.PhysAddr]uint32{l.ctx: 1}
		l.sizes[p] = sc
		l.stat(l.ctx).UserPages += pages4K(sc)
		l.bumpLive(pages4K(sc))
	case mem.OpIncRef:
		h := l.holders[p]
		if h == nil {
			h = make(map[hw.PhysAddr]uint32)
			l.holders[p] = h
			l.sizes[p] = sc
			l.anomalies++
		}
		h[l.ctx]++
		if h[l.ctx] == 1 {
			l.stat(l.ctx).UserPages += pages4K(sc)
		}
	case mem.OpDecRef:
		l.dropRef(p, sc)
	case mem.OpCacheFill:
		// Free -> cached: the frame now belongs to the page-cache
		// pseudo-container, regardless of whose syscall triggered the
		// refill — cached frames are owned by no real container.
		l.owner[p] = PageCache
		l.stat(PageCache).ObjPages++
		l.bumpLive(1)
	case mem.OpCacheAlloc:
		// Cached -> user-mapped under the current context. Live total is
		// unchanged: the page moves between closure columns.
		if _, ok := l.owner[p]; !ok {
			l.anomalies++
		} else {
			delete(l.owner, p)
			l.stat(PageCache).ObjPages--
			l.live--
		}
		l.holders[p] = map[hw.PhysAddr]uint32{l.ctx: 1}
		l.sizes[p] = sc
		l.stat(l.ctx).UserPages += pages4K(sc)
		l.bumpLive(pages4K(sc))
	case mem.OpCacheFree:
		// User-mapped (last ref) -> cached: drop the mapping exactly as
		// OpFreeUser would, then park the frame under the page-cache.
		l.dropRef(p, sc)
		if h := l.holders[p]; len(h) != 0 {
			for _, c := range sortedCntrs(h) {
				l.stat(c).UserPages -= pages4K(l.sizes[p])
				l.anomalies++
			}
		}
		delete(l.holders, p)
		delete(l.sizes, p)
		l.live -= pages4K(sc)
		l.owner[p] = PageCache
		l.stat(PageCache).ObjPages++
		l.bumpLive(1)
	case mem.OpCacheDrain:
		// Cached -> free.
		if _, ok := l.owner[p]; !ok {
			l.anomalies++
			return
		}
		delete(l.owner, p)
		l.stat(PageCache).ObjPages--
		l.live--
	case mem.OpFreeUser:
		l.dropRef(p, sc)
		if h := l.holders[p]; len(h) != 0 {
			// Stale attribution left behind by an unmatched context: the
			// allocator says the page is gone, so clear the mirror and let
			// the anomaly counter flag the drift.
			for _, c := range sortedCntrs(h) {
				l.stat(c).UserPages -= pages4K(l.sizes[p])
				l.anomalies++
			}
		}
		delete(l.holders, p)
		delete(l.sizes, p)
		l.live -= pages4K(sc)
	}
}

// dropRef removes one mapping reference from p: from the current context
// when it holds one, otherwise from the lowest-numbered holder (the
// deterministic fallback for teardown paths acting on behalf of a dying
// container — InFlight, being 1, always drops first).
func (l *Ledger) dropRef(p hw.PhysAddr, sc mem.SizeClass) {
	h := l.holders[p]
	if len(h) == 0 {
		l.anomalies++
		return
	}
	c := l.ctx
	if h[c] == 0 {
		cs := sortedCntrs(h)
		c = cs[0]
	}
	h[c]--
	if h[c] == 0 {
		delete(h, c)
		l.stat(c).UserPages -= pages4K(sc)
	}
}

// MoveRef transfers one mapping reference on p from one container to
// another — how the kernel tracks an IPC page transfer: sender to
// InFlight at send, InFlight to receiver at delivery.
func (l *Ledger) MoveRef(p hw.PhysAddr, from, to hw.PhysAddr) {
	if l == nil {
		return
	}
	h := l.holders[p]
	if h == nil || h[from] == 0 {
		l.anomalies++
		return
	}
	sc := l.sizes[p]
	h[from]--
	if h[from] == 0 {
		delete(h, from)
		l.stat(from).UserPages -= pages4K(sc)
	}
	h[to]++
	if h[to] == 1 {
		l.stat(to).UserPages += pages4K(sc)
	}
}

// Attribute moves an object page's ownership to a container — used right
// after new_container, whose child object page is allocated under the
// parent's context but is, by the quota model, the child's own first
// page (child.UsedPages starts at 1).
func (l *Ledger) Attribute(p hw.PhysAddr, c hw.PhysAddr) {
	if l == nil {
		return
	}
	prev, ok := l.owner[p]
	if !ok {
		l.anomalies++
		return
	}
	if prev == c {
		return
	}
	l.stat(prev).ObjPages--
	l.owner[p] = c
	l.stat(c).ObjPages++
}

// ChargeCycles adds kernel or driver cycles to a container's bill.
func (l *Ledger) ChargeCycles(c hw.PhysAddr, cycles uint64) {
	if l == nil || cycles == 0 {
		return
	}
	l.stat(c).Cycles += cycles
}

func (l *Ledger) bumpLive(n uint64) {
	l.live += n
	if l.live > l.watermark {
		l.watermark = l.live
	}
}

// NameContainer gives a container a display name (used in rows, audit
// errors, and the per-container metric gauges).
func (l *Ledger) NameContainer(c hw.PhysAddr, name string) {
	if l != nil {
		l.names[c] = name
	}
}

// retireIfDead archives a named container's row when its own object
// page is freed and its closure has fully drained. The allocator will
// recycle the frame — possibly as the object page of a brand-new
// container — so the dead incarnation's history (name, cycle bill)
// must move out of the live maps before the pointer is reused.
func (l *Ledger) retireIfDead(p hw.PhysAddr) {
	name, named := l.names[p]
	if !named {
		return
	}
	s, ok := l.stats[p]
	if !ok || s.ObjPages != 0 || s.UserPages != 0 {
		return
	}
	l.retired = append(l.retired, ContainerRow{Cntr: p, Name: name, ContainerStat: *s})
	delete(l.stats, p)
	delete(l.names, p)
}

// nameOf renders a container for error messages and rows.
func (l *Ledger) nameOf(c hw.PhysAddr) string {
	if c == InFlight {
		return "in-flight"
	}
	if c == PageCache {
		return "page-cache"
	}
	if n, ok := l.names[c]; ok {
		return n
	}
	if c == 0 {
		return "unattributed"
	}
	return fmt.Sprintf("cntr-%#x", uint64(c))
}

// ContainerPages returns a container's live page count in 4 KiB units.
func (l *Ledger) ContainerPages(c hw.PhysAddr) uint64 {
	if l == nil {
		return 0
	}
	s, ok := l.stats[c]
	if !ok {
		return 0
	}
	return s.ObjPages + s.UserPages
}

// ContainerCycles returns the cycles charged to a container.
func (l *Ledger) ContainerCycles(c hw.PhysAddr) uint64 {
	if l == nil {
		return 0
	}
	s, ok := l.stats[c]
	if !ok {
		return 0
	}
	return s.Cycles
}

// LivePages returns the ledger's live page total in 4 KiB units.
func (l *Ledger) LivePages() uint64 {
	if l == nil {
		return 0
	}
	return l.live
}

// Watermark returns the peak live page total.
func (l *Ledger) Watermark() uint64 {
	if l == nil {
		return 0
	}
	return l.watermark
}

// Anomalies returns how many events the ledger could not attribute.
func (l *Ledger) Anomalies() uint64 {
	if l == nil {
		return 0
	}
	return l.anomalies
}

// Rows snapshots every container with live pages or charged cycles —
// live containers sorted by pointer, then retired (dead, named)
// incarnations in death order. Both orders are deterministic.
func (l *Ledger) Rows() []ContainerRow {
	if l == nil {
		return nil
	}
	cs := make([]hw.PhysAddr, 0, len(l.stats))
	for c := range l.stats {
		cs = append(cs, c)
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	var out []ContainerRow
	for _, c := range cs {
		s := l.stats[c]
		if s.ObjPages == 0 && s.UserPages == 0 && s.Cycles == 0 {
			continue
		}
		out = append(out, ContainerRow{Cntr: c, Name: l.nameOf(c), ContainerStat: *s})
	}
	return append(out, l.retired...)
}

// sortedCntrs returns a holder map's keys in ascending order.
func sortedCntrs(h map[hw.PhysAddr]uint32) []hw.PhysAddr {
	out := make([]hw.PhysAddr, 0, len(h))
	for c := range h {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetAuditEvery makes MaybeAudit run a full audit every n calls
// (0 disables).
func (l *Ledger) SetAuditEvery(n uint64) {
	if l != nil {
		l.auditEvery = n
	}
}

// MaybeAudit runs Audit on the configured period; cheap otherwise.
func (l *Ledger) MaybeAudit() error {
	if l == nil || l.auditEvery == 0 {
		return nil
	}
	l.auditTick++
	if l.auditTick%l.auditEvery != 0 {
		return nil
	}
	return l.Audit()
}

// Audit compares the ledger's mirror against the allocator's ground
// truth: the union of per-container object sets must equal the
// allocator's allocated set, the union of per-container mapping sets
// must equal the mapped set, and per-page reference totals must match
// exactly. Disjointness of the per-container object closures holds by
// construction (each page has exactly one owner entry); the equality
// checks are what catch a leak — a page freed or allocated behind the
// ledger's back shows up as a named container's delta.
func (l *Ledger) Audit() error {
	if l == nil {
		return nil
	}
	l.audits++
	err := l.audit()
	if err != nil {
		l.auditFails++
		l.lastErr = err
	}
	return err
}

func (l *Ledger) audit() error {
	if l.alloc == nil {
		return fmt.Errorf("account: ledger not bound to an allocator")
	}
	snap := l.alloc.Snapshot()
	// Object pages: ledger keys vs allocator's allocated set.
	for _, p := range snap.Allocated.Sorted() {
		if _, ok := l.owner[p]; !ok {
			return fmt.Errorf("account: allocated page %#x missing from ledger (container unattributed, delta +1 page)", uint64(p))
		}
	}
	for _, p := range sortedPages(l.owner) {
		if !snap.Allocated.Contains(p) {
			c := l.owner[p]
			return fmt.Errorf("account: container %s holds object page %#x the allocator no longer has (leak delta %d -> %d pages)",
				l.nameOf(c), uint64(p), l.stats[c].ObjPages, l.stats[c].ObjPages-1)
		}
	}
	// User pages: holder unions vs the mapped set, refcount-exact.
	for _, p := range snap.Mapped.Sorted() {
		h := l.holders[p]
		if len(h) == 0 {
			return fmt.Errorf("account: mapped page %#x missing from ledger (container unattributed)", uint64(p))
		}
		var total uint32
		for _, n := range h {
			total += n
		}
		meta, err := l.alloc.Meta(p)
		if err != nil {
			return err
		}
		if total != meta.RefCount {
			c := sortedCntrs(h)[0]
			return fmt.Errorf("account: page %#x has %d ledger refs (first holder %s) but refcount %d (delta %d)",
				uint64(p), total, l.nameOf(c), meta.RefCount, int64(total)-int64(meta.RefCount))
		}
	}
	for p, h := range l.holders {
		if !snap.Mapped.Contains(p) && len(h) != 0 {
			c := sortedCntrs(h)[0]
			return fmt.Errorf("account: container %s holds %d refs on page %#x the allocator freed (leak delta -%d pages)",
				l.nameOf(c), h[c], uint64(p), pages4K(l.sizes[p]))
		}
	}
	return nil
}

func sortedPages(m map[hw.PhysAddr]hw.PhysAddr) []hw.PhysAddr {
	out := make([]hw.PhysAddr, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AuditStats reports (audits run, audit failures).
func (l *Ledger) AuditStats() (uint64, uint64) {
	if l == nil {
		return 0, 0
	}
	return l.audits, l.auditFails
}

// RegisterMetrics publishes the ledger's aggregate state as gauges:
// live/watermark page totals, audit counters, attribution anomalies, and
// allocator free-list fragmentation. Per-container gauges are published
// by RegisterContainerMetrics.
func (l *Ledger) RegisterMetrics(m *obs.Registry) {
	if l == nil || m == nil {
		return
	}
	m.Gauge("account.pages.live", func() uint64 { return l.live })
	m.Gauge("account.pages.watermark", func() uint64 { return l.watermark })
	m.Gauge("account.audits", func() uint64 { return l.audits })
	m.Gauge("account.audit_failures", func() uint64 { return l.auditFails })
	m.Gauge("account.anomalies", func() uint64 { return l.anomalies })
	m.Gauge("account.alloc.free4k", func() uint64 {
		if l.alloc == nil {
			return 0
		}
		return uint64(l.alloc.FreeCount4K())
	})
	m.Gauge("account.alloc.frag_pct", func() uint64 { return l.FragPercent() })
}

// RegisterContainerMetrics publishes one container's page and cycle
// totals under "account.cntr.<name>.{pages,cycles}". Re-registering a
// name (a respawned driver generation) repoints the gauges at the new
// container, mirroring how registry counters survive respawn.
func (l *Ledger) RegisterContainerMetrics(m *obs.Registry, name string, c hw.PhysAddr) {
	if l == nil || m == nil {
		return
	}
	m.Gauge("account.cntr."+name+".pages", func() uint64 { return l.ContainerPages(c) })
	m.Gauge("account.cntr."+name+".cycles", func() uint64 { return l.ContainerCycles(c) })
}

// FragPercent measures free-list fragmentation: the percentage of free
// 4 KiB frames that cannot participate in any naturally aligned fully
// free 2 MiB run (the merge unit of §4.2). 0 means every free frame is
// superpage-coalescible; 100 means none is. O(frames) — dump-time only.
func (l *Ledger) FragPercent() uint64 {
	if l == nil || l.alloc == nil {
		return 0
	}
	snap := l.alloc.Snapshot()
	free := snap.Free4K
	if free.Len() == 0 {
		return 0
	}
	frames := l.alloc.Frames()
	mem4k := l.alloc.Mem()
	run := int(hw.Pages4KPer2M)
	coalescible := 0
	for start := 0; start+run <= frames; start += run {
		ok := true
		for i := start; i < start+run; i++ {
			if !free.Contains(mem4k.FrameAddr(i)) {
				ok = false
				break
			}
		}
		if ok {
			coalescible += run
		}
	}
	return uint64(100 - 100*coalescible/free.Len())
}
