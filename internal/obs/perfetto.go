package obs

import (
	"bufio"
	"io"
	"strconv"

	"atmosphere/internal/hw"
)

// Chrome/Perfetto trace_event JSON exporter. The output loads directly
// in ui.perfetto.dev (or chrome://tracing): every registered track
// becomes a (pid, tid) pair with process_name/thread_name metadata,
// spans become complete ("X") events, instants become instant ("i")
// events. Timestamps are microseconds of simulated time (cycles at the
// 2.2 GHz model clock). The writer is hand-rolled so the byte stream is
// a pure function of the tracer's contents — two same-seed runs export
// byte-identical files.

// cyclesPerMicro converts model cycles to trace_event's microsecond
// timestamps.
const cyclesPerMicro = float64(hw.ClockHz) / 1e6

func writeTS(b *bufio.Writer, cycles uint64) {
	// 4 decimals of a microsecond = 0.1 ns, finer than one 2.2 GHz cycle.
	b.WriteString(strconv.FormatFloat(float64(cycles)/cyclesPerMicro, 'f', 4, 64))
}

func writeStr(b *bufio.Writer, s string) {
	b.WriteString(strconv.Quote(s))
}

// WriteTrace writes the tracer's live events as trace_event JSON.
func WriteTrace(w io.Writer, t *Tracer) error {
	b := bufio.NewWriter(w)
	b.WriteString("{\"traceEvents\":[")
	first := true
	sep := func() {
		if !first {
			b.WriteString(",\n")
		} else {
			b.WriteString("\n")
		}
		first = false
	}
	// Track metadata, in registration order (deterministic). One
	// process_name per distinct pid (first track of the pid wins), one
	// thread_name per track.
	seenPid := map[int]bool{}
	for _, tr := range t.Tracks() {
		if !seenPid[tr.PID] {
			seenPid[tr.PID] = true
			sep()
			b.WriteString("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":")
			b.WriteString(strconv.Itoa(tr.PID))
			b.WriteString(",\"tid\":0,\"args\":{\"name\":")
			writeStr(b, tr.PIDName)
			b.WriteString("}}")
		}
		sep()
		b.WriteString("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":")
		b.WriteString(strconv.Itoa(tr.PID))
		b.WriteString(",\"tid\":")
		b.WriteString(strconv.Itoa(tr.TID))
		b.WriteString(",\"args\":{\"name\":")
		writeStr(b, tr.TIDName)
		b.WriteString("}}")
	}
	tracks := t.Tracks()
	for _, e := range t.Events() {
		if int(e.Track) >= len(tracks) {
			continue // unregistered track: unreachable via the public API
		}
		tr := tracks[e.Track]
		sep()
		b.WriteString("{\"name\":")
		writeStr(b, t.NameOf(e.Name))
		switch e.Kind {
		case KindSpan:
			b.WriteString(",\"ph\":\"X\"")
		case KindInstant:
			b.WriteString(",\"ph\":\"i\",\"s\":\"t\"")
		case KindCounter:
			b.WriteString(",\"ph\":\"C\"")
		}
		b.WriteString(",\"pid\":")
		b.WriteString(strconv.Itoa(tr.PID))
		b.WriteString(",\"tid\":")
		b.WriteString(strconv.Itoa(tr.TID))
		b.WriteString(",\"ts\":")
		writeTS(b, e.TS)
		if e.Kind == KindSpan {
			b.WriteString(",\"dur\":")
			writeTS(b, e.Dur)
		}
		if e.Kind == KindCounter {
			// Counter samples always carry their value — zero included,
			// since a drop back to zero is exactly what the step shows.
			b.WriteString(",\"args\":{\"value\":")
			b.WriteString(strconv.FormatUint(e.Arg, 10))
			b.WriteString("}")
		} else if e.Arg != 0 {
			b.WriteString(",\"args\":{\"arg\":")
			b.WriteString(strconv.FormatUint(e.Arg, 10))
			b.WriteString("}")
		}
		b.WriteString("}")
	}
	b.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n")
	return b.Flush()
}
