package bench

import (
	"fmt"
	"runtime"

	"atmosphere/internal/verify"
)

// AblationFlatVsRecursive reproduces the §6.2 comparison: discharging
// the same structural obligations with flat permission storage versus
// the recursive formulations. The paper's numbers compare the
// Atmosphere and NrOS page tables (4.37 vs 13.3 proof:code; 33s vs
// 1m52s verification); our executable analogue compares checking times
// for the identical properties in both styles.
func AblationFlatVsRecursive() (Result, error) {
	flat, rec := verify.AblationObligations()
	runtime.GC() // settle the heap so earlier experiments don't skew timing
	flatT, flatTotal, err := verify.RunObligations(flat, 1)
	if err != nil {
		return Result{}, err
	}
	runtime.GC()
	recT, recTotal, err := verify.RunObligations(rec, 1)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		ID:    "ablation",
		Title: "Impact of flat design: flat vs recursive obligation discharge (§6.2)",
	}
	for i := range flatT {
		res.Rows = append(res.Rows, Row{
			Name: flatT[i].Name, Value: flatT[i].Elapsed.Seconds() * 1000, Unit: "ms",
		})
	}
	for i := range recT {
		res.Rows = append(res.Rows, Row{
			Name: recT[i].Name, Value: recT[i].Elapsed.Seconds() * 1000, Unit: "ms",
		})
	}
	// Per-obligation ratios: match flat/recursive pairs by suffix.
	byName := func(ts []verify.Timing, name string) float64 {
		for _, t := range ts {
			if t.Name == name {
				return t.Elapsed.Seconds()
			}
		}
		return 0
	}
	ptFlat := byName(flatT, "pt_refinement(flat)")
	ptRec := byName(recT, "pt_refinement(recursive)")
	treeFlat := byName(flatT, "container_tree_wf(flat)")
	treeRec := byName(recT, "container_tree_wf(recursive)")
	if ptFlat > 0 {
		res.Rows = append(res.Rows, Row{
			Name: "page-table recursive/flat ratio", Value: ptRec / ptFlat,
			Paper: 3.0, Unit: "x (paper: PT verifies >3x faster flat)",
		})
	}
	if treeFlat > 0 {
		res.Rows = append(res.Rows, Row{
			Name: "container-tree recursive/flat ratio", Value: treeRec / treeFlat,
			Unit: "x",
		})
	}
	res.Rows = append(res.Rows, Row{
		Name: "overall recursive/flat ratio", Value: recTotal.Seconds() / flatTotal.Seconds(), Unit: "x",
	})
	res.Notes = append(res.Notes,
		fmt.Sprintf("flat total %.1fms, recursive total %.1fms", flatTotal.Seconds()*1000, recTotal.Seconds()*1000))
	return res, nil
}
