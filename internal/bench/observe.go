package bench

import (
	"atmosphere/internal/kernel"
	"atmosphere/internal/obs"
	"atmosphere/internal/obs/account"
	"atmosphere/internal/obs/contend"
)

// Observability taps for the benchmark kernels. Each experiment boots
// its own kernel, so cmd/atmo-bench installs the sinks once with SetObs
// and every instrumented experiment wires them in at boot. Attaching
// observability never charges a cycle (tracingfree_test.go holds Table 3
// to that), so the measured numbers are identical with and without it.
var (
	benchTracer  *obs.Tracer
	benchMetrics *obs.Registry
	benchLedger  *account.Ledger
	benchContend *contend.Observatory
)

// SetObs installs the tracer/registry every subsequent experiment
// attaches to its kernel (nil/nil disables).
func SetObs(t *obs.Tracer, m *obs.Registry) {
	benchTracer = t
	benchMetrics = m
}

// SetLedger installs a page-ownership ledger every subsequent
// experiment binds to its kernel's allocator (nil disables). Rebinding
// the same ledger per boot resets it, so after a run it reflects the
// last experiment's kernel — enough for the closure audit and the
// attribution rows, which is what -profile consumers want.
func SetLedger(l *account.Ledger) { benchLedger = l }

// SetContention installs a contention observatory every subsequent
// experiment attaches to its kernel (nil disables). Unlike the ledger
// the observatory accumulates across boots — repeated experiments
// register their big locks as distinct frontiers, so an `atmo-trace`
// session over several workloads reports all of them.
func SetContention(o *contend.Observatory) { benchContend = o }

// attachObs wires the installed sinks into a freshly booted kernel.
func attachObs(k *kernel.Kernel) {
	if benchTracer != nil || benchMetrics != nil {
		k.AttachObs(benchTracer, benchMetrics)
	}
	if benchLedger != nil {
		k.AttachLedger(benchLedger)
	}
	if benchContend != nil {
		k.AttachContention(benchContend)
	}
}
