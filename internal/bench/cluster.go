package bench

import (
	"fmt"

	"atmosphere/internal/cluster"
	"atmosphere/internal/faults"
	"atmosphere/internal/hw"
	"atmosphere/internal/obs/dist"
)

// The cluster chaos series (`-series cluster`): the multi-machine
// serving tier of internal/cluster run twice — once fault-free for the
// steady-state envelope, once with a backend machine killed mid-run —
// reporting latency quantiles, throughput, and the reconvergence SLOs
// (how long the Maglev tier takes to evict the dead backend and to
// reinstate it after its respawn). Deterministic: DefaultConfig's seed
// pins both runs' trace hashes, which the chaos note surfaces so a
// reference diff catches any replay divergence.

// clusterKillTick is when the chaos phase kills backend 1 (machine
// node 3): deep enough into the run that the tier is in steady state,
// early enough that kill, respawn (+300 ticks), and reinstatement all
// complete well before the run ends.
const clusterKillTick = 800

func clusterChaosPlan() faults.Plan {
	return faults.Plan{Rules: []faults.Rule{{
		Kind:   faults.MachineKill,
		Period: clusterKillTick * cluster.TickCycles,
		Until:  (clusterKillTick + 1) * cluster.TickCycles,
		Target: 3, // backend 1
	}}}
}

// ClusterChaos runs the steady and chaos phases and tabulates both.
func ClusterChaos() (Result, error) {
	res := Result{
		ID:    "cluster",
		Title: "Cluster serving tier: Maglev failover under machine kill (simulated)",
	}
	steady, _, err := runCluster("cluster.steady", faults.Plan{}, false)
	if err != nil {
		return Result{}, err
	}
	// The chaos phase runs with distributed tracing on: tracing is
	// cycle-free (TestTracingIsFreeCluster), so every gated row below
	// is untouched, and the ungated notes gain the tail-latency
	// attribution and per-machine tracer pressure.
	chaos, col, err := runCluster("cluster.chaos", clusterChaosPlan(), true)
	if err != nil {
		return Result{}, err
	}
	if chaos.Kills != 1 || chaos.Respawns != 1 {
		return Result{}, fmt.Errorf("bench: cluster chaos run had %d kills, %d respawns (want 1/1)",
			chaos.Kills, chaos.Respawns)
	}

	cfg := cluster.DefaultConfig()
	kreq := func(r cluster.Report) float64 {
		wall := float64(r.Ticks) * cluster.TickCycles
		return float64(r.Responses) * hw.ClockHz / wall / 1e3
	}
	res.Rows = append(res.Rows,
		Row{Name: "steady p50", Value: float64(steady.P50), Unit: "cycles"},
		Row{Name: "steady p99", Value: float64(steady.P99), Unit: "cycles"},
		Row{Name: "steady p999", Value: float64(steady.P999), Unit: "cycles"},
		Row{Name: "steady throughput", Value: kreq(steady), Unit: "Kreq/s"},
		Row{Name: "chaos p999", Value: float64(chaos.P999), Unit: "cycles"},
		Row{Name: "chaos reconverge kill", Value: float64(chaos.ReconvergeKillCycles), Unit: "cycles"},
		Row{Name: "chaos reconverge return", Value: float64(chaos.ReconvergeReturnCycles), Unit: "cycles"},
		Row{Name: "chaos requests lost", Value: float64(chaos.GaveUp), Unit: "reqs"},
		Row{Name: "chaos requests misrouted", Value: float64(chaos.Misrouted), Unit: "reqs"},
		Row{Name: "chaos throughput", Value: kreq(chaos), Unit: "Kreq/s"},
	)
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d backends, %d flows, %d arrivals/tick, %d ticks of %d cycles, seed %d",
			cfg.Backends, cfg.Flows, cfg.Rate, cfg.Ticks, cluster.TickCycles, cfg.Seed),
		fmt.Sprintf("chaos kills backend 1 at tick %d; respawn after %d ticks; probes every %d ticks evict after %d misses",
			clusterKillTick, cfg.RespawnDelayTicks, cfg.ProbeEvery, cfg.DeadAfter),
		fmt.Sprintf("in flight at kill %d, lost %d (<5%% SLO); trace hashes steady %#x chaos %#x",
			chaos.InFlightAtKill, chaos.GaveUp, steady.TraceHash, chaos.TraceHash),
	)
	attr := col.Attribution(1)
	comp := func(c dist.Components) string {
		return fmt.Sprintf("queue %d + link %d + lb %d + backend %d + backoff %d",
			c.ClientQueue, c.Link, c.LB, c.Backend, c.Backoff)
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("chaos traces: %d completed, %d abandoned, %d stale; attribution share %s of %d total cycles",
			attr.Completed, attr.Abandoned, attr.Stale, comp(attr.Comp), attr.TotalLatency))
	for _, row := range attr.Rows {
		res.Notes = append(res.Notes,
			fmt.Sprintf("chaos %s trace: %d cycles = %s", row.Label, row.Rec.Latency, comp(row.Rec.Comp)))
	}
	res.Notes = append(res.Notes, col.PressureNotes()...)
	return res, nil
}

func runCluster(name string, plan faults.Plan, traced bool) (cluster.Report, *dist.Collector, error) {
	cfg := cluster.DefaultConfig()
	cfg.Name = name
	cfg.Plan = plan
	cfg.Tracer = benchTracer
	cfg.Metrics = benchMetrics
	cfg.DistTracing = traced
	c, err := cluster.New(cfg)
	if err != nil {
		return cluster.Report{}, nil, fmt.Errorf("bench: cluster: %w", err)
	}
	return c.Run(), c.Dist(), nil
}
