package bench

import (
	"errors"
	"fmt"

	"atmosphere/internal/drivers"
	"atmosphere/internal/faults"
	"atmosphere/internal/hw"
	"atmosphere/internal/nvme"
)

// degradedIOs is the per-rate IO budget for the degraded-mode sweep.
const degradedIOs = 1024

// DegradedNvmeThroughput measures sustained 4 KiB sequential write
// throughput of the linked NVMe driver as the injected fault rate rises:
// command errors (retried with backoff) plus completion stalls. At low
// rates the device envelope hides the recovery work entirely; past the
// crossover the retry/backoff cycles saturate the core and throughput
// degrades CPU-bound — but it degrades, every loss is a counted
// bounded-retry exhaustion, and nothing hangs or panics.
func DegradedNvmeThroughput() (Result, error) {
	res := Result{
		ID:    "degraded",
		Title: "NVMe write throughput under fault injection (4KiB sequential)",
	}
	rates := []float64{0, 0.05, 0.10, 0.20, 0.40}
	var base float64
	for _, rate := range rates {
		iops, stats, lost, err := degradedRun(rate)
		if err != nil {
			return res, err
		}
		if rate == 0 {
			base = iops
		}
		res.Rows = append(res.Rows, Row{
			Name:  fmt.Sprintf("write fault-rate=%.2f", rate),
			Value: iops,
			Unit:  "IOPS",
		})
		if rate > 0 {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"rate %.2f: %.0f%% of fault-free, lost %d/%d, %s",
				rate, 100*iops/base, lost, degradedIOs, stats.String()))
		}
	}
	res.Notes = append(res.Notes,
		"IOPS folds the device envelope (232K derated writes): low fault rates stay device-bound",
		"retry policy: up to 5 attempts, exponential backoff from 2000 cycles",
		"stalls at half the error rate, 150K-cycle release; same seed reproduces the series bit-for-bit")
	return res, nil
}

// degradedRun drives the write workload at one fault rate and returns
// the CPU-side IOPS, the driver counters, and the commands lost to
// retry exhaustion.
func degradedRun(rate float64) (float64, drivers.DriverStats, int, error) {
	env, err := drivers.NewStorageEnv(drivers.CfgDriverLinked, 4096, 64)
	if err != nil {
		return 0, drivers.DriverStats{}, 0, err
	}
	attachObs(env.K)
	if rate > 0 {
		inj, err := faults.NewInjector(8021, faults.Plan{Rules: []faults.Rule{
			{Kind: faults.NvmeCmdError, Rate: rate},
			{Kind: faults.NvmeStall, Rate: rate / 2, Param: 150_000},
		}}, env.K.Machine.TotalCycles)
		if err != nil {
			return 0, drivers.DriverStats{}, 0, err
		}
		env.Dev.SetInjector(inj)
	}

	clk := &env.K.Machine.Core(env.DrvCore).Clock
	start := clk.Cycles()
	const batch = 32
	lost, lba := 0, uint64(0)
	for done := 0; done < degradedIOs; done += batch {
		if err := env.Drv.SubmitBatch(nvme.OpWrite, lba, batch); err != nil {
			return 0, drivers.DriverStats{}, 0, err
		}
		remaining := batch
		for remaining > 0 {
			n, err := env.Drv.PollCompletions(remaining)
			remaining -= n
			switch {
			case err == nil:
			case errors.Is(err, drivers.ErrCmdFailed):
				lost++
				remaining--
			case errors.Is(err, drivers.ErrCmdTimeout):
				// Stalled completion: keep polling, time advances.
			default:
				return 0, drivers.DriverStats{}, 0, err
			}
		}
		lba = (lba + batch) % 1024
	}
	stats := env.Drv.Stats()
	cycles := clk.Cycles() - start
	if cycles == 0 {
		return 0, stats, lost, fmt.Errorf("bench: no cycles charged")
	}
	iops := float64(stats.Completed) * hw.ClockHz / float64(cycles)
	if devMax := nvme.WriteMaxIOPS * drivers.AtmoWriteEfficiency; iops > devMax {
		iops = devMax
	}
	return iops, stats, lost, nil
}
