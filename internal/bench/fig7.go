package bench

import (
	"encoding/binary"
	"fmt"

	"atmosphere/internal/apps"
	"atmosphere/internal/baselines"
	"atmosphere/internal/drivers"
	"atmosphere/internal/hw"
	"atmosphere/internal/nic"
)

// kvCase is one Figure 7 cell.
type kvCase struct {
	tableEntries uint64
	kvSize       int // key and value bytes (the paper's <8,8>, <16,16>, <32,32>)
}

// fig7Cases are the paper's table-size × kv-size grid.
func fig7Cases() []kvCase {
	return []kvCase{
		{1_000_000, 8}, {1_000_000, 16}, {1_000_000, 32},
		{8_000_000, 8}, {8_000_000, 16}, {8_000_000, 32},
	}
}

// kvPayload builds a deterministic GET/SET mix (90% GET, memcached-like)
// over a keyspace that fits the table at 50% load.
func kvPayload(kvSize int, keyspace uint64) func(i uint64, buf []byte) int {
	return func(i uint64, buf []byte) int {
		key := make([]byte, kvSize)
		binary.LittleEndian.PutUint64(key, i%keyspace)
		op := byte(apps.KVGet)
		if i%10 == 0 {
			op = apps.KVSet
		}
		var val []byte
		if op == apps.KVSet {
			val = make([]byte, kvSize)
			binary.LittleEndian.PutUint64(val, i)
		}
		n, err := apps.BuildKVRequest(buf, op, key, val)
		if err != nil {
			panic(err)
		}
		return n
	}
}

// runKV measures one configuration/case cell.
func runKV(cfg drivers.NetConfig, batch int, c kvCase) (float64, error) {
	store, err := apps.NewKVStore(c.tableEntries, c.kvSize, c.kvSize)
	if err != nil {
		return 0, err
	}
	// Preload half the table so GETs hit.
	var clk hw.Clock
	keyspace := c.tableEntries / 2
	preload := keyspace
	if preload > 50_000 {
		preload = 50_000 // representative preload; load factor effects
		keyspace = preload
	}
	key := make([]byte, c.kvSize)
	val := make([]byte, c.kvSize)
	for i := uint64(0); i < preload; i++ {
		binary.LittleEndian.PutUint64(key, i)
		binary.LittleEndian.PutUint64(val, i)
		if !store.Set(&clk, key, val) {
			return 0, fmt.Errorf("bench: preload failed at %d", i)
		}
	}
	gen := nic.NewGenerator(123, 256, 60)
	gen.SetPayload(kvPayload(c.kvSize, keyspace))
	env, err := drivers.NewNetEnv(cfg, gen)
	if err != nil {
		return 0, err
	}
	rates, err := env.RunRx(netPackets, batch, store.Serve)
	if err != nil {
		return 0, err
	}
	if store.Gets == 0 || store.Hits == 0 {
		return 0, fmt.Errorf("bench: kv store saw no traffic (gets=%d hits=%d)", store.Gets, store.Hits)
	}
	return rates.Mpps, nil
}

// dpdkKVMrps models the C/DPDK kv-store baseline: the DPDK PMD cost
// plus the same table-probe and protocol costs our store charges.
func dpdkKVMrps(c kvCase) float64 {
	probe := float64(hw.CostCacheMiss) / 2
	if c.tableEntries > 4_000_000 {
		probe = hw.CostCacheMiss
	}
	// ~1.3 probes per lookup at 50% load, plus value copy.
	work := float64(apps.ServeCycles) + 1.3*probe + float64(c.kvSize)*2.0/16
	return baselines.DPDKMpps(32, work)
}

// Fig7KVStore reproduces Figure 7: kv-store throughput across table
// sizes and kv sizes for the C+DPDK baseline, atmo-c2, and atmo-c1-b32.
func Fig7KVStore() (Result, error) {
	res := Result{
		ID:    "fig7",
		Title: "Key-value store throughput (Mreq/s)",
	}
	for _, c := range fig7Cases() {
		label := fmt.Sprintf("%dM/<%dB,%dB>", c.tableEntries/1_000_000, c.kvSize, c.kvSize)
		res.Rows = append(res.Rows, Row{
			Name: "kv dpdk-c " + label, Value: dpdkKVMrps(c), Unit: "Mreq/s",
		})
		v, err := runKV(drivers.CfgC2, 32, c)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, Row{Name: "kv atmo-c2 " + label, Value: v, Unit: "Mreq/s"})
		v, err = runKV(drivers.CfgC1, 32, c)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, Row{Name: "kv atmo-c1-b32 " + label, Value: v, Unit: "Mreq/s"})
	}
	res.Notes = append(res.Notes,
		"paper reports Figure 7 graphically without numeric labels; the shape claims are:",
		"atmo-c2 tracks or beats dpdk-c, atmo-c1-b32 trails both, 8M tables are slower than 1M, larger items are slower",
		"FNV open addressing with linear probing, 90/10 GET/SET, 50% target load")
	return res, nil
}
