package bench

import (
	"atmosphere/internal/baselines"
	"atmosphere/internal/drivers"
	"atmosphere/internal/nvme"
)

// storageIOs is the per-configuration IO budget.
const storageIOs = 2048

// Fig5NvmePerformance reproduces Figure 5: 4 KiB sequential read and
// write IOPS for Linux (fio/libaio), SPDK, and the Atmosphere driver
// configurations at batch sizes 1 and 32.
func Fig5NvmePerformance() (Result, error) {
	res := Result{
		ID:    "fig5",
		Title: "NVMe driver performance, 4KiB sequential (IOPS)",
	}
	add := func(name string, v, paper float64) {
		res.Rows = append(res.Rows, Row{Name: name, Value: v, Paper: paper, Unit: "IOPS"})
	}
	// Reads.
	add("read linux-b1", baselines.LinuxFioIOPS(true, 1), 13_000)
	add("read linux-b32", baselines.LinuxFioIOPS(true, 32), 141_000)
	add("read spdk-b1", baselines.SPDKIOPS(true, 1), 0)
	add("read spdk-b32", baselines.SPDKIOPS(true, 32), 0)
	type cfgCase struct {
		name  string
		cfg   drivers.NetConfig
		op    byte
		batch int
		paper float64
	}
	cases := []cfgCase{
		{"read atmo-driver-b1", drivers.CfgDriverLinked, nvme.OpRead, 1, 0},
		{"read atmo-driver-b32", drivers.CfgDriverLinked, nvme.OpRead, 32, 0},
		{"read atmo-c2-b32", drivers.CfgC2, nvme.OpRead, 32, 0},
		{"read atmo-c1-b1", drivers.CfgC1, nvme.OpRead, 1, 0},
		{"read atmo-c1-b32", drivers.CfgC1, nvme.OpRead, 32, 0},
	}
	for _, c := range cases {
		env, err := drivers.NewStorageEnv(c.cfg, 4096, 64)
		if err != nil {
			return res, err
		}
		rates, err := env.RunSequential(c.op, storageIOs, c.batch)
		if err != nil {
			return res, err
		}
		add(c.name, rates.IOPS, c.paper)
	}
	// Writes.
	add("write linux-b32", baselines.LinuxFioIOPS(false, 32), 248_000)
	add("write spdk-b32", baselines.SPDKIOPS(false, 32), 0)
	wcases := []cfgCase{
		{"write atmo-driver-b32", drivers.CfgDriverLinked, nvme.OpWrite, 32, 232_000},
		{"write atmo-c2-b32", drivers.CfgC2, nvme.OpWrite, 32, 232_000},
		{"write atmo-c1-b32", drivers.CfgC1, nvme.OpWrite, 32, 232_000},
	}
	for _, c := range wcases {
		env, err := drivers.NewStorageEnv(c.cfg, 4096, 64)
		if err != nil {
			return res, err
		}
		rates, err := env.RunSequential(c.op, storageIOs, c.batch)
		if err != nil {
			return res, err
		}
		add(c.name, rates.IOPS, c.paper)
	}
	res.Notes = append(res.Notes,
		"device envelope: 460K read / 256K write IOPS, 76us read latency (P3700)",
		"paper: SPDK and atmo reach max device read performance; atmo writes carry a 10% overhead (232K)")
	return res, nil
}
