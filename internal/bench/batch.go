package bench

import (
	"fmt"

	"atmosphere/internal/apps"
	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/mem"
	"atmosphere/internal/obs"
	"atmosphere/internal/obs/account"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
	"atmosphere/internal/sel4"
	"atmosphere/internal/shmring"
)

// The batch series (ROADMAP item 3, `-series batch`): what submission
// rings and grant-based zero-copy buy on top of PR 9's lock sharding.
// Three mechanisms, three groups of rows:
//
//   - nop rows isolate the amortized crossing: one doorbell drains b
//     ops, so the entry/dispatch/exit trampoline divides by b, against
//     the seL4 baseline's fixed floor (it has no rings);
//   - xfer rows isolate zero-copy: a 4 KiB value moved by scalar-copy
//     IPC (128 call/reply messages of 32 register bytes) vs one page
//     grant riding a single buffered send through the ledger's
//     InFlight container;
//   - kv-rpc rows put both together: a key-value server at 1/4/16
//     cores, classic one-rendezvous-per-request vs request pages
//     granted through batched rings, 512 packed requests per page.
//
// Everything is a pure function of the cycle model and kvrSeed: same
// seed, same core count ⇒ the same trace, byte for byte, which
// batchingfree_test.go pins per core.

const (
	// kvrSeed seeds the deterministic request streams.
	kvrSeed = 42
	// kvrReqsPerPage: 8-byte packed requests filling one 4 KiB page.
	kvrReqsPerPage = hw.PageSize4K / 8
	// kvrPages is the grant pages (= ring submissions) per doorbell.
	kvrPages = 8
	// kvrRounds is batched rounds per core; unbatched cores serve the
	// same number of requests for a like-for-like division.
	kvrRounds = 2
	// kvrStoreBits sizes each core's private table (8/8 key/value).
	kvrStoreBits = 14
	// kvrVABase/kvrVAStep lay out per-core rings and grant windows.
	kvrVABase = 0x4000_0000
	kvrVAStep = 0x100_0000
	// nopRounds sizes the amortization microbenchmark.
	nopRounds = 64
)

var kvrCores = []int{1, 4, 16}

// BatchThroughput is the "batch" experiment.
func BatchThroughput() (Result, error) {
	res := Result{
		ID:    "batch",
		Title: "Syscall batching rings + zero-copy grant transfer (simulated)",
	}
	for _, b := range []int{1, 8, 32} {
		cyc, err := nopBatchCycles(b)
		if err != nil {
			return Result{}, fmt.Errorf("bench: nop batch=%d: %w", b, err)
		}
		res.Rows = append(res.Rows, Row{
			Name: fmt.Sprintf("nop batch=%d", b), Value: cyc, Unit: "cycles"})
	}
	res.Rows = append(res.Rows, Row{
		Name: "nop seL4 (no rings)", Value: sel4NopCycles(), Unit: "cycles"})

	copy4k, err := xferScalarCopyCycles()
	if err != nil {
		return Result{}, fmt.Errorf("bench: scalar xfer: %w", err)
	}
	grant4k, err := xferGrantCycles()
	if err != nil {
		return Result{}, fmt.Errorf("bench: grant xfer: %w", err)
	}
	res.Rows = append(res.Rows,
		Row{Name: "xfer 4KiB scalar IPC", Value: copy4k, Unit: "cycles"},
		Row{Name: "xfer 4KiB grant", Value: grant4k, Unit: "cycles"},
	)

	var unb4, bat4 float64
	for _, batched := range []bool{false, true} {
		label := "unbatched"
		if batched {
			label = "batched"
		}
		for _, n := range kvrCores {
			ops, wall, _, err := runKVRPC(batched, n, kvrSeed, 0)
			if err != nil {
				return Result{}, fmt.Errorf("bench: kv-rpc %s %dc: %w", label, n, err)
			}
			if wall == 0 {
				return Result{}, fmt.Errorf("bench: kv-rpc %s %dc ran for zero cycles", label, n)
			}
			mops := float64(ops) * hw.ClockHz / float64(wall) / 1e6
			res.Rows = append(res.Rows, Row{
				Name:  fmt.Sprintf("kv-rpc %s %dc", label, n),
				Value: mops,
				Unit:  "Mops/s",
			})
			if n == 4 {
				if batched {
					bat4 = mops
				} else {
					unb4 = mops
				}
			}
		}
	}
	res.Notes = append(res.Notes,
		"nop = empty submission; one doorbell pays entry/dispatch/exit once and drains b ops",
		"xfer = moving one 4 KiB value between address spaces: 128 x 32-byte register messages vs one page grant (ownership moves through the in-flight ledger container)",
		"kv-rpc unbatched = one call/reply rendezvous per packed request; batched = "+
			fmt.Sprint(kvrPages)+" request pages granted per doorbell, "+
			fmt.Sprint(kvrReqsPerPage)+" requests per page, replies granted back in place",
		fmt.Sprintf("throughput = requests x 2.2 GHz / max per-core cycles; deterministic, seed %d", kvrSeed),
	)
	if unb4 > 0 {
		res.Notes = append(res.Notes,
			fmt.Sprintf("batching step-function at 4 cores: %.2fx", bat4/unb4))
	}
	return res, nil
}

// nopBatchCycles measures the per-op cost of draining b nops per
// doorbell through SysBatch over real mapped ring pages. The rings'
// user-side traffic charges a scratch clock so the row reads pure
// kernel crossing cost, the Table-3 convention.
func nopBatchCycles(b int) (float64, error) {
	k, init, err := kernel.Boot(hw.Config{Frames: 1024, Cores: 1, TLBSlots: 64})
	if err != nil {
		return 0, err
	}
	attachObs(k)
	const sqVA, cqVA = hw.VirtAddr(0x500000), hw.VirtAddr(0x501000)
	if r := k.SysMmap(0, init, sqVA, 2, hw.Size4K, pt.RW); r.Errno != kernel.OK {
		return 0, fmt.Errorf("ring pages: %v", r.Errno)
	}
	sq, cq, err := userRings(k, init, sqVA, cqVA, &hw.Clock{})
	if err != nil {
		return 0, err
	}
	clk := &k.Machine.Core(0).Clock
	run := func(rounds int) error {
		for w := 0; w < rounds; w++ {
			for i := 0; i < b; i++ {
				if err := shmring.EncodeSQE(sq, kernel.BopNop, 0, uint16(i)); err != nil {
					return err
				}
			}
			if r := k.SysBatch(0, init, sqVA, cqVA, 0); r.Errno != kernel.OK || r.Vals[0] != uint64(b) {
				return fmt.Errorf("doorbell: %v drained %d", r.Errno, r.Vals[0])
			}
			for i := 0; i < b; i++ {
				if _, err := shmring.PopCQE(cq); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := run(4); err != nil { // warm
		return 0, err
	}
	start := clk.Cycles()
	if err := run(nopRounds); err != nil {
		return 0, err
	}
	return float64(clk.Cycles()-start) / float64(nopRounds*b), nil
}

// sel4NopCycles is the baseline's amortization floor: its cheapest
// syscall still pays the whole trampoline on every operation.
func sel4NopCycles() float64 {
	phys := hw.NewPhysMem(16)
	clk := &hw.Clock{}
	k := sel4.New(mem.NewAllocator(phys, clk, 1), clk)
	const rounds = 1000
	start := clk.Cycles()
	for i := 0; i < rounds; i++ {
		k.Yield()
	}
	return float64(clk.Cycles()-start) / rounds
}

// xferScalarCopyCycles moves one 4 KiB value by register IPC: the
// kernel's messages carry 4 scalar registers (32 bytes), so the value
// takes 128 call/reply round trips.
func xferScalarCopyCycles() (float64, error) {
	k, init, err := kernel.Boot(hw.Config{Frames: 1024, Cores: 2, TLBSlots: 64})
	if err != nil {
		return 0, err
	}
	attachObs(k)
	server, err := benchPair(k, init)
	if err != nil {
		return 0, err
	}
	if r := k.SysRecv(0, server, 0, kernel.RecvArgs{EdptSlot: -1}); r.Errno != kernel.EWOULDBLOCK {
		return 0, fmt.Errorf("park: %v", r.Errno)
	}
	for i := 0; i < 16; i++ { // warm
		k.SysCall(0, init, 0, kernel.SendArgs{})
		k.SysReplyRecv(0, server, 0, kernel.SendArgs{}, kernel.RecvArgs{EdptSlot: -1})
	}
	const msgs = hw.PageSize4K / 32
	const xfers = 8
	clk := &k.Machine.Core(0).Clock
	start := clk.Cycles()
	for x := 0; x < xfers; x++ {
		for m := 0; m < msgs; m++ {
			w := uint64(x*msgs + m)
			if r := k.SysCall(0, init, 0, kernel.SendArgs{Regs: [4]uint64{w, w + 1, w + 2, w + 3}}); r.Errno != kernel.EWOULDBLOCK {
				return 0, fmt.Errorf("call: %v", r.Errno)
			}
			if r := k.SysReplyRecv(0, server, 0, kernel.SendArgs{}, kernel.RecvArgs{EdptSlot: -1}); r.Errno != kernel.EWOULDBLOCK {
				return 0, fmt.Errorf("reply_recv: %v", r.Errno)
			}
		}
	}
	return float64(clk.Cycles()-start) / xfers, nil
}

// xferGrantCycles moves one 4 KiB value by page grant: a buffered send
// revokes the sender's mapping and parks the page on the in-flight
// ledger container; the receive maps it into the receiver's space.
func xferGrantCycles() (float64, error) {
	k, init, err := kernel.Boot(hw.Config{Frames: 1024, Cores: 2, TLBSlots: 64})
	if err != nil {
		return 0, err
	}
	attachObs(k)
	server, err := benchPair(k, init)
	if err != nil {
		return 0, err
	}
	const base = hw.VirtAddr(0x600000)
	const xfers = 64
	if r := k.SysMmap(0, init, base, xfers+4, hw.Size4K, pt.RW); r.Errno != kernel.OK {
		return 0, fmt.Errorf("grant pages: %v", r.Errno)
	}
	for i := 0; i < 4; i++ { // warm
		va := base + hw.VirtAddr(xfers+i)*hw.PageSize4K
		k.SysSendAsync(0, init, 0, kernel.SendArgs{GrantPage: true, PageVA: va})
		k.SysRecv(0, server, 0, kernel.RecvArgs{PageVA: va, EdptSlot: -1})
	}
	clk := &k.Machine.Core(0).Clock
	start := clk.Cycles()
	for i := 0; i < xfers; i++ {
		va := base + hw.VirtAddr(i)*hw.PageSize4K
		if r := k.SysSendAsync(0, init, 0, kernel.SendArgs{GrantPage: true, PageVA: va}); r.Errno != kernel.OK {
			return 0, fmt.Errorf("grant %d: %v", i, r.Errno)
		}
		if r := k.SysRecv(0, server, 0, kernel.RecvArgs{PageVA: va, EdptSlot: -1}); r.Errno != kernel.OK {
			return 0, fmt.Errorf("grant recv %d: %v", i, r.Errno)
		}
	}
	return float64(clk.Cycles()-start) / xfers, nil
}

// benchPair adds a second thread sharing init's endpoint slot 0.
func benchPair(k *kernel.Kernel, init pm.Ptr) (pm.Ptr, error) {
	r := k.SysNewThread(0, init, 0)
	if r.Errno != kernel.OK {
		return 0, fmt.Errorf("new_thread: %v", r.Errno)
	}
	server := pm.Ptr(r.Vals[0])
	re := k.SysNewEndpoint(0, init, 0)
	if re.Errno != kernel.OK {
		return 0, fmt.Errorf("endpoint: %v", re.Errno)
	}
	ep := pm.Ptr(re.Vals[0])
	k.PM.Thrd(server).Endpoints[0] = ep
	k.PM.EndpointIncRef(ep, 1)
	return server, nil
}

// userRings builds user-side ring views over the physical pages backing
// sqVA/cqVA in tid's address space, charging clk.
func userRings(k *kernel.Kernel, tid pm.Ptr, sqVA, cqVA hw.VirtAddr, clk *hw.Clock) (*shmring.Ring, *shmring.Ring, error) {
	proc := k.PM.Proc(k.PM.Thrd(tid).OwningProc)
	se, ok := proc.PageTable.Lookup(sqVA)
	if !ok {
		return nil, nil, fmt.Errorf("sq page unmapped")
	}
	ce, ok := proc.PageTable.Lookup(cqVA)
	if !ok {
		return nil, nil, fmt.Errorf("cq page unmapped")
	}
	return shmring.New(k.Machine.Mem, clk, se.Phys, shmring.SlotsPerPage()),
		shmring.New(k.Machine.Mem, clk, ce.Phys, shmring.SlotsPerPage()), nil
}

// RunKVRPC runs the kv-rpc workload for the CLIs with the given
// observability sinks attached (any may be nil). perCore scales the
// per-core request count; <= 0 selects the series default. Returns
// (requests served, simulated wall-clock cycles, total cycles summed
// across cores).
func RunKVRPC(batched bool, cores int, seed uint64, perCore int,
	tr *obs.Tracer, reg *obs.Registry, led *account.Ledger) (ops, wall, total uint64, err error) {
	savedT, savedM, savedL := benchTracer, benchMetrics, benchLedger
	benchTracer, benchMetrics, benchLedger = tr, reg, led
	defer func() { benchTracer, benchMetrics, benchLedger = savedT, savedM, savedL }()
	return runKVRPC(batched, cores, seed, perCore)
}

// kvrCore is one core's serving pair: a client process and a server
// process in a core-pinned container, a request endpoint (slot 0) and
// a reply endpoint (slot 1) shared between them.
type kvrCore struct {
	client, server pm.Ptr
	store          *apps.KVStore
	// Batched-path state.
	cliSQ, cliCQ, srvSQ, srvCQ *shmring.Ring
	cliSQVA, srvSQVA           hw.VirtAddr
}

func (w *kvrCore) cliCQVA() hw.VirtAddr { return w.cliSQVA + hw.PageSize4K }
func (w *kvrCore) srvCQVA() hw.VirtAddr { return w.srvSQVA + hw.PageSize4K }

// kvrReq derives request i of core c's deterministic stream: SET then
// GET of the same key, so every GET hits.
func kvrReq(seed uint64, c, i int) uint64 {
	h := mcMix(seed ^ uint64(c)<<40 ^ uint64(i/2))
	return apps.PackKVReq(i%2 == 0, h)
}

// runKVRPC boots a cores-wide kernel with contention, per-core caches,
// and work stealing (the multicore series' machine model) and serves
// the same deterministic request stream either classically (one
// call/reply rendezvous per request) or through batched rings with
// request pages moving by grant.
func runKVRPC(batched bool, cores int, seed uint64, perCore int) (ops, wall, total uint64, err error) {
	gen := kvrPages * kvrReqsPerPage // requests per ring generation
	reqs := kvrRounds * gen
	if perCore > 0 {
		// Round up to whole generations so both variants serve the same
		// requests and the batched path always rings whole doorbells.
		reqs = (perCore + gen - 1) / gen * gen
	}
	k, init, err := kernel.Boot(hw.Config{Frames: 16384, Cores: cores, TLBSlots: 256})
	if err != nil {
		return 0, 0, 0, err
	}
	attachObs(k)
	k.EnableCoreCaches(mcBatch)
	k.PM.EnableWorkStealing()

	workers := make([]*kvrCore, cores)
	for c := 0; c < cores; c++ {
		if workers[c], err = kvrSetup(k, init, c, batched); err != nil {
			return 0, 0, 0, fmt.Errorf("core %d: %w", c, err)
		}
	}
	aligned := alignCores(k, cores)
	k.EnableContention()

	for c := 0; c < cores; c++ {
		w := workers[c]
		if batched {
			for r := 0; r < reqs/gen; r++ {
				n, rerr := kvrBatchedRound(k, c, w, seed, r)
				if rerr != nil {
					return 0, 0, 0, fmt.Errorf("core %d round %d: %w", c, r, rerr)
				}
				ops += n
			}
		} else {
			n, rerr := kvrUnbatched(k, c, w, seed, reqs)
			if rerr != nil {
				return 0, 0, 0, fmt.Errorf("core %d: %w", c, rerr)
			}
			ops += n
		}
	}
	return ops, k.Machine.MaxCycles() - aligned, k.Machine.TotalCycles(), nil
}

// kvrSetup builds one core's serving pair.
func kvrSetup(k *kernel.Kernel, init pm.Ptr, c int, batched bool) (*kvrCore, error) {
	rc := k.SysNewContainer(0, init, 192, []int{c})
	if rc.Errno != kernel.OK {
		return nil, fmt.Errorf("container: %v", rc.Errno)
	}
	cntr := pm.Ptr(rc.Vals[0])
	w := &kvrCore{}
	procs := make([]pm.Ptr, 2)
	tids := []*pm.Ptr{&w.client, &w.server}
	for i := range procs {
		rp := k.SysNewProcessIn(0, init, cntr)
		if rp.Errno != kernel.OK {
			return nil, fmt.Errorf("process %d: %v", i, rp.Errno)
		}
		procs[i] = pm.Ptr(rp.Vals[0])
		rt := k.SysNewThreadIn(0, init, procs[i], c)
		if rt.Errno != kernel.OK {
			return nil, fmt.Errorf("thread %d: %v", i, rt.Errno)
		}
		*tids[i] = pm.Ptr(rt.Vals[0])
	}
	for slot := 0; slot < 2; slot++ {
		re := k.SysNewEndpoint(c, w.client, slot)
		if re.Errno != kernel.OK {
			return nil, fmt.Errorf("endpoint %d: %v", slot, re.Errno)
		}
		ep := pm.Ptr(re.Vals[0])
		k.PM.Thrd(w.server).Endpoints[slot] = ep
		k.PM.EndpointIncRef(ep, 1)
	}
	store, err := apps.NewKVStore(1<<kvrStoreBits, 8, 8)
	if err != nil {
		return nil, err
	}
	w.store = store
	if !batched {
		return w, nil
	}
	base := hw.VirtAddr(kvrVABase + c*kvrVAStep)
	w.cliSQVA, w.srvSQVA = base, base
	clk := &k.Machine.Core(c).Clock
	// Client: 2 ring pages + the grant window; server: 2 ring pages
	// (its landing window is mapped by the grant deliveries).
	if r := k.SysMmap(c, w.client, w.cliSQVA, 2, hw.Size4K, pt.RW); r.Errno != kernel.OK {
		return nil, fmt.Errorf("client rings: %v", r.Errno)
	}
	if r := k.SysMmap(c, w.client, kvrGrantVA(c, 0), kvrPages, hw.Size4K, pt.RW); r.Errno != kernel.OK {
		return nil, fmt.Errorf("grant window: %v", r.Errno)
	}
	if r := k.SysMmap(c, w.server, w.srvSQVA, 2, hw.Size4K, pt.RW); r.Errno != kernel.OK {
		return nil, fmt.Errorf("server rings: %v", r.Errno)
	}
	if w.cliSQ, w.cliCQ, err = userRings(k, w.client, w.cliSQVA, w.cliCQVA(), clk); err != nil {
		return nil, err
	}
	if w.srvSQ, w.srvCQ, err = userRings(k, w.server, w.srvSQVA, w.srvCQVA(), clk); err != nil {
		return nil, err
	}
	return w, nil
}

// kvrGrantVA is the client-side grant window; kvrLandVA the server-side
// landing window (distinct VAs: distinct address spaces).
func kvrGrantVA(c, p int) hw.VirtAddr {
	return hw.VirtAddr(kvrVABase+c*kvrVAStep+0x10000) + hw.VirtAddr(p)*hw.PageSize4K
}
func kvrLandVA(c, p int) hw.VirtAddr {
	return hw.VirtAddr(kvrVABase+c*kvrVAStep+0x20000) + hw.VirtAddr(p)*hw.PageSize4K
}

// kvrUnbatched serves reqs requests classically: the server parks in
// recv, each request is one client call + one server reply_recv, the
// serve charged to the core clock between them.
func kvrUnbatched(k *kernel.Kernel, c int, w *kvrCore, seed uint64, reqs int) (uint64, error) {
	clk := &k.Machine.Core(c).Clock
	if r := k.SysRecv(c, w.server, 0, kernel.RecvArgs{EdptSlot: -1}); r.Errno != kernel.EWOULDBLOCK {
		return 0, fmt.Errorf("park: %v", r.Errno)
	}
	var ops uint64
	for i := 0; i < reqs; i++ {
		req := kvrReq(seed, c, i)
		if r := k.SysCall(c, w.client, 0, kernel.SendArgs{Regs: [4]uint64{req}}); r.Errno != kernel.EWOULDBLOCK {
			return ops, fmt.Errorf("call %d: %v", i, r.Errno)
		}
		rep := w.store.ServeReg(clk, req)
		if r := k.SysReplyRecv(c, w.server, 0, kernel.SendArgs{Regs: [4]uint64{rep}},
			kernel.RecvArgs{EdptSlot: -1}); r.Errno != kernel.EWOULDBLOCK {
			return ops, fmt.Errorf("reply_recv %d: %v", i, r.Errno)
		}
		ops++
	}
	return ops, nil
}

// kvrDoorbell rings one batch and drains its completions, asserting
// every op completed OK.
func kvrDoorbell(k *kernel.Kernel, c int, tid pm.Ptr, sqVA, cqVA hw.VirtAddr, cq *shmring.Ring, want int) error {
	if r := k.SysBatch(c, tid, sqVA, cqVA, 0); r.Errno != kernel.OK || r.Vals[0] != uint64(want) {
		return fmt.Errorf("doorbell: %v drained %d want %d", r.Errno, r.Vals[0], want)
	}
	for i := 0; i < want; i++ {
		cqe, err := shmring.PopCQE(cq)
		if err != nil {
			return fmt.Errorf("cqe %d: %w", i, err)
		}
		if kernel.Errno(cqe.Errno) != kernel.OK {
			return fmt.Errorf("cqe %d: errno %v", i, kernel.Errno(cqe.Errno))
		}
	}
	return nil
}

// kvrBatchedRound serves kvrPages*kvrReqsPerPage requests through one
// ring generation: the client fills its grant window with packed
// requests and grants the pages through one doorbell; the server
// receives them into its landing window with a second doorbell, serves
// every request in place, and grants the pages back on the reply
// endpoint; the client drains them home with a final doorbell. Page
// ownership walks sender -> in-flight -> receiver twice per page per
// round, entirely without copying the payload.
func kvrBatchedRound(k *kernel.Kernel, c int, w *kvrCore, seed uint64, round int) (uint64, error) {
	clk := &k.Machine.Core(c).Clock
	cliProc := k.PM.Proc(k.PM.Thrd(w.client).OwningProc)
	srvProc := k.PM.Proc(k.PM.Thrd(w.server).OwningProc)
	base := round * kvrPages * kvrReqsPerPage

	// Client: fill and grant the request pages.
	for p := 0; p < kvrPages; p++ {
		e, ok := cliProc.PageTable.Lookup(kvrGrantVA(c, p))
		if !ok {
			return 0, fmt.Errorf("grant page %d unmapped", p)
		}
		for j := 0; j < kvrReqsPerPage; j++ {
			req := kvrReq(seed, c, base+p*kvrReqsPerPage+j)
			k.Machine.Mem.WriteU64(e.Phys+hw.PhysAddr(8*j), req)
		}
		clk.ChargeBytes(hw.PageSize4K) // streaming fill
		if err := shmring.EncodeSQE(w.cliSQ, kernel.BopSendAsync, 0, uint16(p),
			0, uint64(p), 0, uint64(kvrGrantVA(c, p))); err != nil {
			return 0, err
		}
	}
	if err := kvrDoorbell(k, c, w.client, w.cliSQVA, w.cliCQVA(), w.cliCQ, kvrPages); err != nil {
		return 0, fmt.Errorf("client send: %w", err)
	}

	// Server: receive, serve in place, grant back.
	for p := 0; p < kvrPages; p++ {
		if err := shmring.EncodeSQE(w.srvSQ, kernel.BopRecv, 0, uint16(p),
			0, uint64(kvrLandVA(c, p)), 0); err != nil {
			return 0, err
		}
	}
	if err := kvrDoorbell(k, c, w.server, w.srvSQVA, w.srvCQVA(), w.srvCQ, kvrPages); err != nil {
		return 0, fmt.Errorf("server recv: %w", err)
	}
	var ops uint64
	for p := 0; p < kvrPages; p++ {
		e, ok := srvProc.PageTable.Lookup(kvrLandVA(c, p))
		if !ok {
			return 0, fmt.Errorf("landing page %d unmapped", p)
		}
		clk.ChargeBytes(2 * hw.PageSize4K) // read requests, write replies
		for j := 0; j < kvrReqsPerPage; j++ {
			addr := e.Phys + hw.PhysAddr(8*j)
			rep := w.store.ServeReg(clk, k.Machine.Mem.ReadU64(addr))
			k.Machine.Mem.WriteU64(addr, rep)
			ops++
		}
		if err := shmring.EncodeSQE(w.srvSQ, kernel.BopSendAsync, 0, uint16(p),
			1, uint64(p), 0, uint64(kvrLandVA(c, p))); err != nil {
			return 0, err
		}
	}
	if err := kvrDoorbell(k, c, w.server, w.srvSQVA, w.srvCQVA(), w.srvCQ, kvrPages); err != nil {
		return 0, fmt.Errorf("server reply: %w", err)
	}

	// Client: drain the reply pages home (remapped at the grant window).
	for p := 0; p < kvrPages; p++ {
		if err := shmring.EncodeSQE(w.cliSQ, kernel.BopRecv, 0, uint16(p),
			1, uint64(kvrGrantVA(c, p)), 0); err != nil {
			return 0, err
		}
	}
	if err := kvrDoorbell(k, c, w.client, w.cliSQVA, w.cliCQVA(), w.cliCQ, kvrPages); err != nil {
		return 0, fmt.Errorf("client recv: %w", err)
	}
	clk.ChargeBytes(kvrPages * hw.PageSize4K) // client reads the replies
	return ops, nil
}
