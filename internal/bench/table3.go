package bench

import (
	"fmt"

	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/mem"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
	"atmosphere/internal/sel4"
)

// Table3SyscallLatency reproduces Table 3: the cycle cost of an IPC
// call/reply round trip and of mapping a page, for Atmosphere and the
// seL4 baseline, both measured on the shared cycle model.
func Table3SyscallLatency() (Result, error) {
	atmoIPC, err := atmoCallReplyCycles()
	if err != nil {
		return Result{}, err
	}
	atmoMap, err := atmoMapPageCycles()
	if err != nil {
		return Result{}, err
	}
	sel4IPC, err := sel4CallReplyCycles()
	if err != nil {
		return Result{}, err
	}
	sel4Map, err := sel4MapPageCycles()
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID:    "table3",
		Title: "Latency of communication and typical system calls (cycles)",
		Rows: []Row{
			{Name: "call/reply atmosphere", Value: atmoIPC, Paper: 1058, Unit: "cycles"},
			{Name: "call/reply seL4", Value: sel4IPC, Paper: 1026, Unit: "cycles"},
			{Name: "map a page atmosphere", Value: atmoMap, Paper: 1984, Unit: "cycles"},
			{Name: "map a page seL4", Value: sel4Map, Paper: 2650, Unit: "cycles"},
		},
		Notes: []string{
			"measured on the simulated c220g5 cycle model; round trip = call + reply_recv",
		},
	}, nil
}

// atmoCallReplyCycles measures the Atmosphere call/reply round trip:
// client SysCall, server SysReplyRecv, averaged over a warm ping-pong.
func atmoCallReplyCycles() (float64, error) {
	k, init, err := kernel.Boot(hw.Config{Frames: 1024, Cores: 2, TLBSlots: 64})
	if err != nil {
		return 0, err
	}
	attachObs(k)
	r := k.SysNewThread(0, init, 0)
	if r.Errno != kernel.OK {
		return 0, fmt.Errorf("bench: new_thread: %v", r.Errno)
	}
	server := pm.Ptr(r.Vals[0])
	re := k.SysNewEndpoint(0, init, 0)
	if re.Errno != kernel.OK {
		return 0, fmt.Errorf("bench: endpoint: %v", re.Errno)
	}
	k.PM.Thrd(server).Endpoints[0] = pm.Ptr(re.Vals[0])
	k.PM.EndpointIncRef(pm.Ptr(re.Vals[0]), 1)
	if r := k.SysRecv(0, server, 0, kernel.RecvArgs{EdptSlot: -1}); r.Errno != kernel.EWOULDBLOCK {
		return 0, fmt.Errorf("bench: park: %v", r.Errno)
	}
	// Warm up.
	for i := 0; i < 16; i++ {
		k.SysCall(0, init, 0, kernel.SendArgs{})
		k.SysReplyRecv(0, server, 0, kernel.SendArgs{}, kernel.RecvArgs{EdptSlot: -1})
	}
	const rounds = 1000
	start := k.Machine.Core(0).Clock.Cycles()
	for i := 0; i < rounds; i++ {
		if r := k.SysCall(0, init, 0, kernel.SendArgs{Regs: [4]uint64{uint64(i)}}); r.Errno != kernel.EWOULDBLOCK {
			return 0, fmt.Errorf("bench: call: %v", r.Errno)
		}
		if r := k.SysReplyRecv(0, server, 0, kernel.SendArgs{}, kernel.RecvArgs{EdptSlot: -1}); r.Errno != kernel.EWOULDBLOCK {
			return 0, fmt.Errorf("bench: reply_recv: %v", r.Errno)
		}
	}
	return float64(k.Machine.Core(0).Clock.Cycles()-start) / rounds, nil
}

// atmoMapPageCycles measures SysMmap of one 4 KiB page with warm
// intermediate tables (the steady-state map cost, as the paper's
// microbenchmark measures it).
func atmoMapPageCycles() (float64, error) {
	k, init, err := kernel.Boot(hw.Config{Frames: 4096, Cores: 2, TLBSlots: 64})
	if err != nil {
		return 0, err
	}
	attachObs(k)
	// Warm the region's intermediate tables.
	if r := k.SysMmap(0, init, 0x40000000, 1, hw.Size4K, pt.RW); r.Errno != kernel.OK {
		return 0, fmt.Errorf("bench: warm mmap: %v", r.Errno)
	}
	const rounds = 500
	start := k.Machine.Core(0).Clock.Cycles()
	for i := 1; i <= rounds; i++ {
		va := hw.VirtAddr(0x40000000 + i*hw.PageSize4K)
		if r := k.SysMmap(0, init, va, 1, hw.Size4K, pt.RW); r.Errno != kernel.OK {
			return 0, fmt.Errorf("bench: mmap: %v", r.Errno)
		}
	}
	return float64(k.Machine.Core(0).Clock.Cycles()-start) / rounds, nil
}

// sel4CallReplyCycles measures the baseline's fastpath round trip.
func sel4CallReplyCycles() (float64, error) {
	phys := hw.NewPhysMem(256)
	clk := &hw.Clock{}
	alloc := mem.NewAllocator(phys, clk, 1)
	k := sel4.New(alloc, clk)
	cs := sel4.NewCSpace(8)
	cs.Install(1, sel4.Cap{Type: sel4.CapEndpoint, Object: 1})
	client := &sel4.TCB{CSpace: cs}
	server := &sel4.TCB{CSpace: cs}
	if err := k.Recv(server, 1); err != nil {
		return 0, err
	}
	const rounds = 1000
	start := clk.Cycles()
	for i := 0; i < rounds; i++ {
		if _, err := k.Call(client, 1, [4]uint64{uint64(i)}); err != nil {
			return 0, err
		}
		if _, err := k.ReplyRecv(server, 1, [4]uint64{}); err != nil {
			return 0, err
		}
	}
	return float64(clk.Cycles()-start) / rounds, nil
}

// sel4MapPageCycles measures seL4_ARCH_Page_Map with warm tables.
func sel4MapPageCycles() (float64, error) {
	phys := hw.NewPhysMem(2048)
	clk := &hw.Clock{}
	alloc := mem.NewAllocator(phys, clk, 1)
	k := sel4.New(alloc, clk)
	table, err := pt.New(alloc, clk)
	if err != nil {
		return 0, err
	}
	cs := sel4.NewCSpace(1024)
	cs.Install(2, sel4.Cap{Type: sel4.CapVSpace, Object: uint64(table.CR3())})
	tcb := &sel4.TCB{CSpace: cs}
	// Warm intermediates.
	warm, err := alloc.AllocUserPage4K()
	if err != nil {
		return 0, err
	}
	cs.Install(3, sel4.Cap{Type: sel4.CapFrame, Object: uint64(warm)})
	if err := k.PageMap(tcb, 3, 2, table, 0x40000000); err != nil {
		return 0, err
	}
	const rounds = 500
	start := clk.Cycles()
	for i := 1; i <= rounds; i++ {
		// seL4's map does not allocate: frames come from prior retypes.
		// The benchmark includes the untyped->frame retype's zeroing,
		// as the end-to-end "map a page" operation requires a frame.
		frame, err := alloc.AllocUserPage4K()
		if err != nil {
			return 0, err
		}
		cs.Install(4, sel4.Cap{Type: sel4.CapFrame, Object: uint64(frame)})
		if err := k.PageMap(tcb, 4, 2, table, hw.VirtAddr(0x40000000+i*hw.PageSize4K)); err != nil {
			return 0, err
		}
	}
	return float64(clk.Cycles()-start) / rounds, nil
}
