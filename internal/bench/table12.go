package bench

import (
	"fmt"
	"os"
	"runtime"

	"atmosphere/internal/verify"
)

// Table1ProofEffort reproduces Table 1: proof-to-code ratios across
// verification projects. The other systems' ratios are the paper's
// reported reference data; Atmosphere's row is measured from this
// repository's own source tree (specification + checker lines vs.
// executable kernel lines — the roles the substitution maps onto
// Verus proof and exec code).
func Table1ProofEffort() (Result, error) {
	res := Result{
		ID:    "table1",
		Title: "Proof effort for existing verification projects (proof:code ratio)",
		Rows: []Row{
			{Name: "seL4 (C+Asm, Isabelle/HOL)", Value: 0, Paper: 20.0, Unit: "ratio"},
			{Name: "CertiKOS (C+Asm, Coq)", Value: 0, Paper: 14.9, Unit: "ratio"},
			{Name: "SeKVM (C+Asm, Coq)", Value: 0, Paper: 6.9, Unit: "ratio"},
			{Name: "Ironclad (Dafny)", Value: 0, Paper: 4.8, Unit: "ratio"},
			{Name: "NrOS (Rust, Verus)", Value: 0, Paper: 10.0, Unit: "ratio"},
			{Name: "VeriSMo (Rust, Verus)", Value: 0, Paper: 2.0, Unit: "ratio"},
		},
	}
	root, ok := moduleRoot()
	if !ok {
		res.Notes = append(res.Notes, "module root not found; Atmosphere row omitted")
		return res, nil
	}
	stats, err := verify.CountLoC(root)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, Row{
		Name:  "Atmosphere (this repo: spec+checker vs exec)",
		Value: stats.Ratio(), Paper: 3.32, Unit: "ratio",
	})
	res.Notes = append(res.Notes,
		fmt.Sprintf("this repo: %d proof-role lines, %d exec-role lines (paper: 20.1K proof, 6K exec)",
			stats.Proof, stats.Exec))
	return res, nil
}

func moduleRoot() (string, bool) {
	wd, err := os.Getwd()
	if err != nil {
		return "", false
	}
	return verify.FindModuleRoot(wd)
}

// Table2VerificationTime reproduces Table 2: full-system verification
// time with 1 and 8 workers, plus the page-table subsystem alone. The
// measured values are the obligation suite's running times — the
// substitution's stand-in for SMT solving — with the paper's Verus
// timings alongside.
func Table2VerificationTime() (Result, error) {
	obls := verify.Obligations()
	_, seq, err := verify.RunObligations(obls, 1)
	if err != nil {
		return Result{}, err
	}
	_, par, err := verify.RunObligations(obls, 8)
	if err != nil {
		return Result{}, err
	}
	var ptObls []verify.Obligation
	for _, o := range obls {
		if o.Module == "page_table" {
			ptObls = append(ptObls, o)
		}
	}
	_, ptSeq, err := verify.RunObligations(ptObls, 1)
	if err != nil {
		return Result{}, err
	}
	root, _ := moduleRoot()
	stats, _ := verify.CountLoC(root)
	return Result{
		ID:    "table2",
		Title: "Verification time (obligation suite vs Verus on c220g5)",
		Rows: []Row{
			{Name: "atmosphere 1 thread", Value: seq.Seconds(), Paper: 209, Unit: "s (paper 3m29s)"},
			{Name: "atmosphere 8 threads", Value: par.Seconds(), Paper: 67, Unit: "s (paper 1m7s)"},
			{Name: "atmo page table 1 thread", Value: ptSeq.Seconds(), Paper: 33, Unit: "s"},
			{Name: "proof lines", Value: float64(stats.Proof), Paper: 20098, Unit: "LoC"},
			{Name: "exec lines", Value: float64(stats.Exec), Paper: 6048, Unit: "LoC"},
			{Name: "proof/exec ratio", Value: stats.Ratio(), Paper: 3.32, Unit: "ratio"},
		},
		Notes: []string{
			fmt.Sprintf("%d obligations; host GOMAXPROCS=%d (parallel speedup requires multi-core host)", len(obls), runtime.GOMAXPROCS(0)),
			"absolute times differ from Verus/Z3 by design; the 1-vs-8-thread and subsystem shapes are the comparison",
		},
	}, nil
}
