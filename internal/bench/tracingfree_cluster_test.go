package bench

import (
	"testing"

	"atmosphere/internal/cluster"
	"atmosphere/internal/faults"
)

// The cluster analog of TestTracingIsFree: distributed tracing must be
// cycle-free. These baselines were captured on the untraced build
// (DefaultConfig, 2000 ticks; chaos = the bench kill plan): the
// untraced run must still reproduce them bit for bit, and the traced
// run must charge the identical cycles and produce the identical
// report in every field except the trace hash (the 16 header bytes on
// each frame are hashed) and the Dist* tallies themselves.
const (
	clusterBaseSteadyHash   = 0x540cd10528418b6b
	clusterBaseSteadyCycles = 14194486
	clusterBaseChaosHash    = 0x766d9033f95ed8df
	clusterBaseChaosCycles  = 13997628
	clusterBaseResponses    = 15968
)

func TestTracingIsFreeCluster(t *testing.T) {
	run := func(plan faults.Plan, traced bool) cluster.Report {
		cfg := cluster.DefaultConfig()
		cfg.Plan = plan
		cfg.DistTracing = traced
		c, err := cluster.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c.Run()
	}
	cases := []struct {
		name         string
		plan         faults.Plan
		hash, cycles uint64
	}{
		{"steady", faults.Plan{}, clusterBaseSteadyHash, clusterBaseSteadyCycles},
		{"chaos", clusterChaosPlan(), clusterBaseChaosHash, clusterBaseChaosCycles},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			off := run(tc.plan, false)
			if off.TraceHash != tc.hash {
				t.Errorf("untraced trace hash %#x, baseline %#x — the run itself drifted", off.TraceHash, tc.hash)
			}
			if off.KernelCycles != tc.cycles {
				t.Errorf("untraced kernel cycles %d, baseline %d", off.KernelCycles, tc.cycles)
			}
			if off.Responses != clusterBaseResponses {
				t.Errorf("untraced responses %d, baseline %d", off.Responses, clusterBaseResponses)
			}

			on := run(tc.plan, true)
			if on.KernelCycles != off.KernelCycles {
				t.Errorf("tracing moved the cluster: %d -> %d cycles", off.KernelCycles, on.KernelCycles)
			}
			if on.TraceHash == off.TraceHash {
				t.Error("traced run hashed identically — the header bytes never reached the wire")
			}
			if on.DistCompleted == 0 || on.DistTraceEvents == 0 {
				t.Errorf("traced run recorded nothing (completed=%d events=%d) — the guard proved nothing",
					on.DistCompleted, on.DistTraceEvents)
			}
			if on.DistCompleted+on.DistStale != on.Responses {
				t.Errorf("trace joins don't reconcile: completed %d + stale %d != responses %d",
					on.DistCompleted, on.DistStale, on.Responses)
			}
			if on.DistIrregular != 0 || on.DistHeaderRejects != 0 {
				t.Errorf("irregular=%d rejects=%d, want 0/0", on.DistIrregular, on.DistHeaderRejects)
			}
			// Every other field must match exactly: normalize the two
			// deliberate differences away and compare wholesale.
			norm := on
			norm.TraceHash = off.TraceHash
			norm.DistCompleted, norm.DistAbandoned, norm.DistOrphaned = 0, 0, 0
			norm.DistStale, norm.DistHeaderRejects, norm.DistIrregular = 0, 0, 0
			norm.DistTraceEvents, norm.DistTraceDropped = 0, 0
			if norm != off {
				t.Errorf("tracing changed the run:\noff = %+v\non  = %+v", off, on)
			}
		})
	}
}
