package bench

import (
	"testing"

	"atmosphere/internal/cluster"
	"atmosphere/internal/faults"
	"atmosphere/internal/hw"
	"atmosphere/internal/obs/contend"
)

// The contention observatory's analog of TestTracingIsFree: with the
// observatory off, every multicore series point and both cluster
// scenarios must reproduce the pinned baselines bit for bit; with it
// attached, not a single simulated wall-clock cycle may move. The
// kvstore and alloc rows date to the build immediately before the
// observatory landed and survived the lock-sharding refactor unchanged
// (single-container workloads: the container frontier reproduces the
// big-lock frontier's arrivals and releases exactly). The ipc rows were
// re-pinned when the workload moved to per-core containers under the
// sharded frontiers: each core's round trips wait on nobody, so the
// wall clock is the 1-core value at every core count.
var mcWallBaseline = map[string]map[int]uint64{
	"ipc": {1: 424000, 2: 424000, 4: 424000, 8: 424000,
		16: 424000, 32: 424000, 64: 424000},
	"kvstore": {1: 274112, 2: 277000, 4: 283886, 8: 467748,
		16: 932612, 32: 1862340, 64: 3721796},
	"alloc": {1: 584794, 2: 620174, 4: 788322, 8: 1573868,
		16: 3144960, 32: 6287144, 64: 12571512},
}

func TestContentionObsIsFree(t *testing.T) {
	savedC := benchContend
	SetContention(nil)
	defer SetContention(savedC)

	// Off: the runs themselves must not have drifted from the
	// pre-observatory build.
	off := map[string]map[int]uint64{}
	for wl, byCores := range mcWallBaseline {
		off[wl] = map[int]uint64{}
		for n, want := range byCores {
			_, wall, err := runMulticore(wl, n, mcSeed)
			if err != nil {
				t.Fatalf("%s %dc: %v", wl, n, err)
			}
			if wall != want {
				t.Errorf("%s %dc without observatory = %d wall cycles, baseline %d", wl, n, wall, want)
			}
			off[wl][n] = wall
		}
	}

	// On: one observatory across the whole grid (frontiers accumulate,
	// like a long-lived monitoring attach) — zero cycles may move.
	cobs := contend.New()
	SetContention(cobs)
	for wl, byCores := range mcWallBaseline {
		for n := range byCores {
			_, wall, err := runMulticore(wl, n, mcSeed)
			if err != nil {
				t.Fatalf("%s %dc observed: %v", wl, n, err)
			}
			if wall != off[wl][n] {
				t.Errorf("%s %dc: observatory moved the run: %d -> %d wall cycles", wl, n, off[wl][n], wall)
			}
		}
	}
	SetContention(nil)

	// The attached runs must actually have fed the observatory, or the
	// equality above proved nothing.
	var waits uint64
	for _, s := range cobs.Summary() {
		waits += s.WaitCycles
	}
	if waits == 0 {
		t.Error("observatory attached but recorded no wait cycles — the guard proved nothing")
	}
	if cobs.RunqDelays().Count() == 0 {
		t.Error("observatory attached but saw no run-queue delays")
	}
}

// Cluster baselines with the contention observatory absent (it never
// wires into the cluster loop): both scenarios' cycles, tail SLOs, and
// trace hashes must keep reproducing the pre-observatory numbers.
func TestContentionObsIsFreeCluster(t *testing.T) {
	run := func(plan faults.Plan) cluster.Report {
		cfg := cluster.DefaultConfig()
		cfg.Plan = plan
		c, err := cluster.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c.Run()
	}

	steady := run(faults.Plan{})
	if steady.Responses != 15968 || steady.KernelCycles != 14194486 {
		t.Errorf("steady responses=%d cycles=%d, baseline 15968/14194486", steady.Responses, steady.KernelCycles)
	}
	if steady.P50 != 80000 || steady.P99 != 80000 {
		t.Errorf("steady p50=%d p99=%d, baseline 80000/80000", steady.P50, steady.P99)
	}
	if steady.TraceHash != 0x540cd10528418b6b {
		t.Errorf("steady trace hash %#x, baseline 0x540cd10528418b6b", steady.TraceHash)
	}

	chaos := run(clusterChaosPlan())
	if chaos.Responses != 15968 || chaos.KernelCycles != 13997628 {
		t.Errorf("chaos responses=%d cycles=%d, baseline 15968/13997628", chaos.Responses, chaos.KernelCycles)
	}
	if chaos.P999 != 600000 || chaos.ReconvergeKillCycles != 180000 {
		t.Errorf("chaos p999=%d reconverge=%d, baseline 600000/180000", chaos.P999, chaos.ReconvergeKillCycles)
	}
	if chaos.TraceHash != 0x766d9033f95ed8df {
		t.Errorf("chaos trace hash %#x, baseline 0x766d9033f95ed8df", chaos.TraceHash)
	}
}

// The lock-order self-test at the bench layer: plant the same inversion
// into two fresh observatories and require the checker to name both
// acquisition sites, byte-identically across the runs.
func TestContentionPlantedInversionDeterministic(t *testing.T) {
	plant := func() string {
		o := contend.New()
		var big, ep hw.LockSim
		big.SetIdentity("big", "kernel")
		ep.SetIdentity("endpoint", "e3")
		bigID := o.Register(&big)
		epID := o.Register(&ep)
		o.ArmOrder(contend.KernelOrder(), 2)
		o.Acquired(1, epID, "edpt_poll")
		o.Acquired(1, bigID, "syscall") // endpoint -> big: inversion
		v := o.FirstInversion()
		if v == nil {
			t.Fatal("planted inversion not caught")
		}
		return v.String()
	}
	first, second := plant(), plant()
	if first != second {
		t.Errorf("inversion report not deterministic:\n%s\n%s", first, second)
	}
	want := `lock-order inversion on core 1: acquiring big/kernel at "syscall" while holding endpoint/e3 acquired at "edpt_poll" (no endpoint -> big edge declared)`
	if first != want {
		t.Errorf("inversion report = %q, want %q", first, want)
	}
}
