package bench

import (
	"atmosphere/internal/baselines"
	"atmosphere/internal/drivers"
	"atmosphere/internal/hw"
	"atmosphere/internal/nic"
)

// rxWorkCycles is the benchmark application's per-packet work in the
// §6.5.1 receive test: count/validate the frame.
const rxWorkCycles = 46

// netPackets is the per-configuration packet budget for the network
// runs (enough for steady state; deterministic).
const netPackets = 4096

func rxWork(clk *hw.Clock, frame []byte) bool {
	clk.Charge(rxWorkCycles)
	return false
}

// runAtmoNet measures one Atmosphere configuration's RX rate.
func runAtmoNet(cfg drivers.NetConfig, batch int, work drivers.AppWork) (drivers.NetRates, error) {
	env, err := drivers.NewNetEnv(cfg, nic.NewGenerator(42, 64, 60))
	if err != nil {
		return drivers.NetRates{}, err
	}
	return env.RunRx(netPackets, batch, work)
}

// Fig4IxgbePerformance reproduces Figure 4: 64-byte UDP packet rates for
// Linux, DPDK, and the Atmosphere driver configurations at batch sizes
// 1 and 32.
func Fig4IxgbePerformance() (Result, error) {
	res := Result{
		ID:    "fig4",
		Title: "Ixgbe driver performance, 64B UDP (Mpps)",
	}
	add := func(name string, v, paper float64) {
		res.Rows = append(res.Rows, Row{Name: name, Value: v, Paper: paper, Unit: "Mpps"})
	}
	add("linux (sockets)", baselines.LinuxUDPMpps(32), 0.89)
	add("dpdk-b1", baselines.DPDKMpps(1, rxWorkCycles), 0)
	add("dpdk-b32", baselines.DPDKMpps(32, rxWorkCycles), 14.2)

	type cfgCase struct {
		name  string
		cfg   drivers.NetConfig
		batch int
		paper float64
	}
	cases := []cfgCase{
		{"atmo-driver-b1", drivers.CfgDriverLinked, 1, 0},
		{"atmo-driver-b32", drivers.CfgDriverLinked, 32, 14.2},
		{"atmo-c1-b1", drivers.CfgC1, 1, 2.3},
		{"atmo-c1-b32", drivers.CfgC1, 32, 11.1},
		{"atmo-c2-b32", drivers.CfgC2, 32, 14.2},
	}
	for _, c := range cases {
		rates, err := runAtmoNet(c.cfg, c.batch, rxWork)
		if err != nil {
			return res, err
		}
		add(c.name, rates.Mpps, c.paper)
	}
	res.Notes = append(res.Notes,
		"line rate capped at 14.2 Mpps (paper's measured 10GbE 64B rate)",
		"atmo rows measured end-to-end through the simulated kernel, IOMMU, rings, and device; linux/dpdk are calibrated cost models")
	return res, nil
}
