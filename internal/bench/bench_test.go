package bench

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "table3", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "ablation", "degraded", "multicore", "batch", "cluster"}
	if len(All()) != len(want) {
		t.Fatalf("%d experiments registered, want %d", len(All()), len(want))
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Fatalf("experiment %s missing", id)
		}
	}
	if _, ok := ByID("nonsense"); ok {
		t.Fatal("bogus id resolved")
	}
	if len(IDs()) != len(want) {
		t.Fatal("IDs() incomplete")
	}
}

func TestResultRendering(t *testing.T) {
	r := Result{
		ID: "x", Title: "demo",
		Rows: []Row{
			{Name: "a", Value: 1.5, Paper: 2.0, Unit: "Mpps"},
			{Name: "no-paper", Value: 1000000, Unit: "IOPS"},
		},
		Notes: []string{"a note"},
	}
	s := r.String()
	for _, frag := range []string{"demo", "a note", "Mpps", "1.50", "no-paper", "-"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("rendering missing %q:\n%s", frag, s)
		}
	}
}

func TestTable3ShapeMatchesPaper(t *testing.T) {
	res, err := Table3SyscallLatency()
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		for _, r := range res.Rows {
			if r.Name == name {
				return r.Value
			}
		}
		t.Fatalf("row %q missing", name)
		return 0
	}
	atmoIPC := get("call/reply atmosphere")
	sel4IPC := get("call/reply seL4")
	atmoMap := get("map a page atmosphere")
	sel4Map := get("map a page seL4")
	// Within 10% of the paper's measurements.
	within := func(got, want float64, what string) {
		if got < want*0.9 || got > want*1.1 {
			t.Fatalf("%s = %.0f, paper %.0f", what, got, want)
		}
	}
	within(atmoIPC, 1058, "atmo call/reply")
	within(sel4IPC, 1026, "seL4 call/reply")
	within(atmoMap, 1984, "atmo map")
	within(sel4Map, 2650, "seL4 map")
	// Shape: seL4 IPC slightly cheaper, Atmosphere map cheaper.
	if sel4IPC >= atmoIPC {
		t.Fatal("seL4 IPC should be slightly cheaper")
	}
	if atmoMap >= sel4Map {
		t.Fatal("Atmosphere map should be cheaper than seL4's")
	}
}

func TestFig4ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("network sweep in -short mode")
	}
	res, err := Fig4IxgbePerformance()
	if err != nil {
		t.Fatal(err)
	}
	v := map[string]float64{}
	for _, r := range res.Rows {
		v[r.Name] = r.Value
	}
	// The paper's ordering: linux << c1-b1 < c1-b32 < c2 = line rate.
	if !(v["linux (sockets)"] < v["atmo-c1-b1"] &&
		v["atmo-c1-b1"] < v["atmo-c1-b32"] &&
		v["atmo-c1-b32"] < v["atmo-c2-b32"]) {
		t.Fatalf("figure 4 ordering broken: %v", v)
	}
	if v["atmo-c2-b32"] != 14.2 || v["atmo-driver-b32"] != 14.2 {
		t.Fatalf("c2/driver should hit line rate: %v", v)
	}
}

func TestFig5ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("storage sweep in -short mode")
	}
	res, err := Fig5NvmePerformance()
	if err != nil {
		t.Fatal(err)
	}
	v := map[string]float64{}
	for _, r := range res.Rows {
		v[r.Name] = r.Value
	}
	// Paper's shapes: linux b1 latency bound ~13K; atmo read b32 at the
	// device envelope, far above linux's CPU-bound 141K; atmo writes at
	// the derated 232K on every configuration.
	if v["read linux-b1"] > 14000 || v["read linux-b1"] < 12000 {
		t.Fatalf("linux b1 = %v", v["read linux-b1"])
	}
	if v["read atmo-driver-b32"] <= v["read linux-b32"]*2 {
		t.Fatal("atmo reads should dwarf linux's CPU-bound rate")
	}
	for _, name := range []string{"write atmo-driver-b32", "write atmo-c2-b32", "write atmo-c1-b32"} {
		if v[name] < 230_000 || v[name] > 234_000 {
			t.Fatalf("%s = %v, want ~232K", name, v[name])
		}
	}
}

func TestMetricFidelityFig6(t *testing.T) {
	if testing.Short() {
		t.Skip("apps sweep in -short mode")
	}
	res, err := Fig6MaglevHttpd()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.Paper == 0 {
			continue
		}
		// Every cell with a paper value lands within 25% of it.
		if r.Value < r.Paper*0.75 || r.Value > r.Paper*1.25 {
			t.Fatalf("%s = %.2f, paper %.2f (off by more than 25%%)", r.Name, r.Value, r.Paper)
		}
	}
}

func TestFig7ShapeClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("kv sweep in -short mode")
	}
	res, err := Fig7KVStore()
	if err != nil {
		t.Fatal(err)
	}
	v := map[string]float64{}
	for _, r := range res.Rows {
		v[r.Name] = r.Value
	}
	for _, size := range []string{"8B,8B", "16B,16B", "32B,32B"} {
		c2_1 := v["kv atmo-c2 1M/<"+size+">"]
		c2_8 := v["kv atmo-c2 8M/<"+size+">"]
		dp_1 := v["kv dpdk-c 1M/<"+size+">"]
		dp_8 := v["kv dpdk-c 8M/<"+size+">"]
		c1_1 := v["kv atmo-c1-b32 1M/<"+size+">"]
		// Shape: atmo-c2 tracks or beats dpdk; 8M slower than 1M.
		if c2_1 < dp_1 || c2_8 < dp_8 {
			t.Fatalf("%s: atmo-c2 below dpdk (%v/%v vs %v/%v)", size, c2_1, c2_8, dp_1, dp_8)
		}
		if c2_8 >= c2_1 || dp_8 >= dp_1 {
			t.Fatalf("%s: 8M table not slower than 1M", size)
		}
		if c1_1 > c2_1 {
			t.Fatalf("%s: c1-b32 beat c2", size)
		}
	}
}

func TestAblationDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	res, err := AblationFlatVsRecursive()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.Name == "page-table recursive/flat ratio" && r.Value < 1.5 {
			t.Fatalf("PT recursive/flat = %.2f; flat should win clearly", r.Value)
		}
		if r.Name == "container-tree recursive/flat ratio" && r.Value < 1.2 {
			t.Fatalf("tree recursive/flat = %.2f; flat should win", r.Value)
		}
	}
}

func TestDegradedThroughputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep in -short mode")
	}
	res, err := DegradedNvmeThroughput()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("want 5 rates, got %d", len(res.Rows))
	}
	base := res.Rows[0].Value
	worst := res.Rows[len(res.Rows)-1].Value
	if base < 230_000 {
		t.Fatalf("fault-free writes should sit at the device envelope: %v", base)
	}
	// Shape: the series never increases — fault handling is hidden by
	// the device envelope at low rates, then the retry/backoff work
	// saturates the core and throughput degrades without collapsing.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Value > res.Rows[i-1].Value {
			t.Fatalf("series not monotone: %v", res.Rows)
		}
	}
	if worst >= base {
		t.Fatalf("40%% fault rate did not cost anything: base=%v worst=%v", base, worst)
	}
	if worst < base/10 {
		t.Fatalf("throughput collapsed under faults: base=%v worst=%v", base, worst)
	}
}
