package bench

import (
	"testing"

	"atmosphere/internal/obs"
	"atmosphere/internal/obs/account"
)

// TestBatchingIsFree pins the two guarantees the batch series rides on:
// the unbatched world is untouched — the Table 3 walls are bit-identical
// to the pre-batching baseline — and the batched world is deterministic:
// same seed, same cores, same Mops/s and the same per-core trace stream,
// event for event.
func TestBatchingIsFree(t *testing.T) {
	SetObs(nil, nil)
	SetLedger(nil)
	defer func() {
		SetObs(nil, nil)
		SetLedger(nil)
	}()

	ipc, err := atmoCallReplyCycles()
	if err != nil {
		t.Fatal(err)
	}
	mp, err := atmoMapPageCycles()
	if err != nil {
		t.Fatal(err)
	}
	if ipc != baselineCallReply {
		t.Errorf("batching PR moved call/reply: %v cycles, baseline %v", ipc, baselineCallReply)
	}
	if mp != baselineMapPage {
		t.Errorf("batching PR moved map-a-page: %v cycles, baseline %v", mp, baselineMapPage)
	}

	for _, cores := range kvrCores {
		type run struct {
			ops, wall uint64
			hashes    []uint64
		}
		do := func() run {
			tr := obs.NewTracer(1 << 16)
			ops, wall, _, err := RunKVRPC(true, cores, kvrSeed, 0,
				tr, obs.NewRegistry(), account.NewLedger())
			if err != nil {
				t.Fatalf("%dc: %v", cores, err)
			}
			if tr.Len() == 0 {
				t.Fatalf("%dc: tracer attached but recorded nothing", cores)
			}
			return run{ops, wall, perCoreTraceHashes(tr, cores)}
		}
		a, b := do(), do()
		if a.ops != b.ops || a.wall != b.wall {
			t.Errorf("%dc: batched run not deterministic: ops %d/%d wall %d/%d",
				cores, a.ops, b.ops, a.wall, b.wall)
		}
		for c := 0; c < cores; c++ {
			if a.hashes[c] != b.hashes[c] {
				t.Errorf("%dc: core %d trace hash differs across same-seed runs: %#x vs %#x",
					cores, c, a.hashes[c], b.hashes[c])
			}
		}
	}
}
