package bench

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

const refFixture = `=== table3: Latency of communication and typical system calls (cycles) ===
case                         measured           paper  unit
call/reply atmosphere            1000            1058  cycles
map a page atmosphere            2000            1984  cycles
note: measured on the simulated c220g5 cycle model

=== fig4: ixgbe forwarding ===
case              measured           paper  unit
64B linked           20.00           24.50  Mpps
host seconds          1.23               -  s

=== table2: Verification time ===
case              measured           paper  unit
proof lines           3668           20098  LoC
`

func fixtureRef(t *testing.T) Reference {
	t.Helper()
	ref, err := ParseReference(strings.NewReader(refFixture))
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

func TestParseReference(t *testing.T) {
	ref := fixtureRef(t)
	if len(ref) != 3 {
		t.Fatalf("parsed %d experiments, want 3", len(ref))
	}
	rr, ok := ref["table3"]["call/reply atmosphere"]
	if !ok || rr.Value != 1000 || rr.Unit != "cycles" {
		t.Fatalf("table3 row = %+v, ok=%v", rr, ok)
	}
	if rr := ref["fig4"]["64B linked"]; rr.Value != 20 || rr.Unit != "Mpps" {
		t.Fatalf("fig4 row = %+v", rr)
	}
	if _, ok := ref["table3"]["case"]; ok {
		t.Fatal("column header parsed as a data row")
	}
}

func TestParseReferenceRealFile(t *testing.T) {
	f, err := os.Open("../../bench_all_reference.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ref, err := ParseReference(f)
	if err != nil {
		t.Fatal(err)
	}
	rr, ok := ref["table3"]["call/reply atmosphere"]
	if !ok || rr.Unit != "cycles" || rr.Value == 0 {
		t.Fatalf("real reference missing table3 call/reply: %+v ok=%v", rr, ok)
	}
	for _, id := range []string{"fig4", "fig5", "fig6", "fig7", "ablation"} {
		if len(ref[id]) == 0 {
			t.Errorf("real reference missing experiment %s", id)
		}
	}
}

func TestCompareDirections(t *testing.T) {
	ref := fixtureRef(t)
	res := []Result{
		{ID: "table3", Rows: []Row{
			{Name: "call/reply atmosphere", Value: 1111, Unit: "cycles"}, // +11.1% latency: worse
			{Name: "map a page atmosphere", Value: 1500, Unit: "cycles"}, // faster: fine
		}},
		{ID: "fig4", Rows: []Row{
			{Name: "64B linked", Value: 17.0, Unit: "Mpps"}, // -15% throughput: worse
			{Name: "host seconds", Value: 99.0, Unit: "s"},  // host unit: skipped
		}},
		{ID: "table2", Rows: []Row{
			{Name: "proof lines", Value: 9999, Unit: "LoC"}, // static unit: skipped
		}},
		{ID: "degraded", Rows: []Row{
			{Name: "anything", Value: 1, Unit: "cycles"}, // not in reference: skipped
		}},
	}
	regs := CompareToReference(res, ref, 10)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2:\n%s", len(regs), strings.Join(regs, "\n"))
	}
	if !strings.Contains(regs[0], "call/reply atmosphere") || !strings.Contains(regs[0], "worse") {
		t.Errorf("latency regression not reported: %q", regs[0])
	}
	if !strings.Contains(regs[1], "64B linked") {
		t.Errorf("throughput regression not reported: %q", regs[1])
	}
}

func TestCompareTolerance(t *testing.T) {
	ref := fixtureRef(t)
	within := []Result{{ID: "table3", Rows: []Row{
		{Name: "call/reply atmosphere", Value: 1099, Unit: "cycles"}, // +9.9%
	}}}
	if regs := CompareToReference(within, ref, 10); len(regs) != 0 {
		t.Fatalf("within-tolerance delta flagged: %v", regs)
	}
	zero := []Result{{ID: "table3", Rows: []Row{
		{Name: "call/reply atmosphere", Value: 0, Unit: "cycles"},
	}}}
	if regs := CompareToReference(zero, ref, 10); len(regs) != 0 {
		t.Fatalf("zero measurement flagged: %v", regs)
	}
}

func TestWriteResultJSON(t *testing.T) {
	r := Result{
		ID: "table3", Title: "Latency",
		Rows:  []Row{{Name: "call/reply atmosphere", Value: 1060, Paper: 1058, Unit: "cycles"}},
		Notes: []string{"simulated"},
	}
	var a, b bytes.Buffer
	if err := WriteResultJSON(&a, r, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if err := WriteResultJSON(&b, r, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("JSON export is not byte-deterministic")
	}
	for _, want := range []string{
		`"id": "table3"`, `"case": "call/reply atmosphere"`,
		`"measured": 1060`, `"paper": 1058`, `"unit": "cycles"`,
		`"trace_hash": "00000000deadbeef"`,
	} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("JSON missing %s:\n%s", want, a.String())
		}
	}
	var c bytes.Buffer
	if err := WriteResultJSON(&c, r, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(c.String(), "trace_hash") {
		t.Error("trace_hash emitted without a tracer")
	}
}

func TestCompareClusterUnits(t *testing.T) {
	// The cluster series' units are direction-aware: requests lost and
	// reconvergence cycles gate downward, throughput upward.
	ref, err := ParseReference(strings.NewReader(`=== cluster: chaos ===
case                      measured  paper  unit
chaos reconverge kill       180000      -  cycles
chaos requests lost             10      -  reqs
chaos throughput            800.00      -  Kreq/s
`))
	if err != nil {
		t.Fatal(err)
	}
	res := []Result{{ID: "cluster", Rows: []Row{
		{Name: "chaos reconverge kill", Value: 400000, Unit: "cycles"}, // slower reconvergence: worse
		{Name: "chaos requests lost", Value: 20, Unit: "reqs"},         // more lost requests: worse
		{Name: "chaos throughput", Value: 500, Unit: "Kreq/s"},         // lower throughput: worse
	}}}
	regs := CompareToReference(res, ref, 10)
	if len(regs) != 3 {
		t.Fatalf("got %d regressions, want 3:\n%s", len(regs), strings.Join(regs, "\n"))
	}
	improved := []Result{{ID: "cluster", Rows: []Row{
		{Name: "chaos reconverge kill", Value: 100000, Unit: "cycles"},
		{Name: "chaos requests lost", Value: 2, Unit: "reqs"},
		{Name: "chaos throughput", Value: 900, Unit: "Kreq/s"},
	}}}
	if regs := CompareToReference(improved, ref, 10); len(regs) != 0 {
		t.Fatalf("improvements flagged as regressions: %v", regs)
	}
}
