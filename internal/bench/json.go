package bench

import (
	"encoding/json"
	"fmt"
	"io"
)

// Machine-readable experiment output. One BENCH_<id>.json per
// experiment makes the performance trajectory diffable across PRs:
// every file carries the measured values, the paper's reference
// values, and the trace hash of the run that produced them.

type jsonRow struct {
	Case     string  `json:"case"`
	Measured float64 `json:"measured"`
	Paper    float64 `json:"paper,omitempty"`
	Unit     string  `json:"unit"`
}

type jsonResult struct {
	ID        string    `json:"id"`
	Title     string    `json:"title"`
	Rows      []jsonRow `json:"rows"`
	Notes     []string  `json:"notes,omitempty"`
	TraceHash string    `json:"trace_hash,omitempty"`
}

// WriteResultJSON writes one experiment result as indented JSON.
// traceHash is the tracer's event-stream hash after the experiment ran
// (pass 0 when no tracer is attached; the field is then omitted). The
// output is byte-deterministic: field order is fixed by the struct and
// the rows keep the experiment's presentation order.
func WriteResultJSON(w io.Writer, r Result, traceHash uint64) error {
	out := jsonResult{ID: r.ID, Title: r.Title, Notes: r.Notes}
	if traceHash != 0 {
		out.TraceHash = fmt.Sprintf("%016x", traceHash)
	}
	for _, row := range r.Rows {
		out.Rows = append(out.Rows, jsonRow{
			Case: row.Name, Measured: row.Value, Paper: row.Paper, Unit: row.Unit,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}
