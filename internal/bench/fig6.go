package bench

import (
	"fmt"

	"atmosphere/internal/apps"
	"atmosphere/internal/baselines"
	"atmosphere/internal/drivers"
	"atmosphere/internal/hw"
	"atmosphere/internal/netproto"
	"atmosphere/internal/nic"
)

// maglevBackends builds the load balancer used across Figure 6 runs.
func maglevBackends() (*apps.Maglev, error) {
	var names []string
	var addrs []netproto.IPv4
	for i := 0; i < 16; i++ {
		names = append(names, fmt.Sprintf("backend-%02d", i))
		addrs = append(addrs, netproto.IPv4{172, 16, 0, byte(i + 1)})
	}
	return apps.NewMaglev(names, addrs, apps.DefaultTableSize)
}

// Fig6MaglevHttpd reproduces Figure 6: the Maglev load balancer's
// forwarding rate across configurations, and httpd vs Nginx.
func Fig6MaglevHttpd() (Result, error) {
	res := Result{
		ID:    "fig6",
		Title: "Maglev and Httpd performance",
	}
	add := func(name string, v, paper float64, unit string) {
		res.Rows = append(res.Rows, Row{Name: name, Value: v, Paper: paper, Unit: unit})
	}
	add("maglev linux (sockets)", baselines.LinuxMaglevMpps(), 1.0, "Mpps")
	add("maglev dpdk", baselines.DPDKMaglevMpps(), 9.72, "Mpps")

	type cfgCase struct {
		name  string
		cfg   drivers.NetConfig
		batch int
		paper float64
	}
	cases := []cfgCase{
		{"maglev atmo-c2", drivers.CfgC2, 32, 13.3},
		{"maglev atmo-c1-b32", drivers.CfgC1, 32, 8.8},
		{"maglev atmo-c1-b1", drivers.CfgC1, 1, 1.66},
	}
	for _, c := range cases {
		m, err := maglevBackends()
		if err != nil {
			return res, err
		}
		env, err := drivers.NewNetEnv(c.cfg, nic.NewGenerator(99, 4096, 60))
		if err != nil {
			return res, err
		}
		rates, err := env.RunRx(netPackets, c.batch, m.Forward)
		if err != nil {
			return res, err
		}
		add(c.name, rates.Mpps, c.paper, "Mpps")
	}

	// Httpd: the paper's best case links the server with the driver.
	add("httpd nginx (linux)", baselines.NginxRps()/1e3, 70.9, "Kreq/s")
	httpdRps, err := runHttpd()
	if err != nil {
		return res, err
	}
	add("httpd atmo-driver", httpdRps/1e3, 99.4, "Kreq/s")
	res.Notes = append(res.Notes,
		"maglev: real permutation-table algorithm over 16 backends, 65537-entry table",
		"httpd: TCP-lite transport (handshake + pipelined keep-alive requests), wrk-substitute with 20 connections")
	return res, nil
}

// runHttpd measures the driver-linked web server over the TCP-lite
// transport: the wrk client opens 20 connections, handshakes, and
// pipelines one request per connection; the server is the real
// per-connection state machine (apps.TCPServer).
func runHttpd() (float64, error) {
	page := make([]byte, 612) // nginx's default index.html size
	for i := range page {
		page[i] = byte('a' + i%26)
	}
	env, err := drivers.NewNetEnv(drivers.CfgDriverLinked, nic.NewGenerator(7, 1, 60))
	if err != nil {
		return 0, err
	}
	const conns = 20 // wrk -c 20, as in §6.6
	wrk := apps.NewWrkClient(conns, "/index.html")
	env.Dev.AttachSource(wrk)
	env.Dev.TxSink = wrk.Consume
	srv, h := apps.NewHttpdTCP(map[string][]byte{"/index.html": page})

	clk := &env.K.Machine.Core(0).Clock
	txBufs := make([][]byte, conns)
	for i := range txBufs {
		txBufs[i] = make([]byte, 2048)
	}
	start := clk.Cycles()
	const target = 4000
	for int(h.Served) < target {
		if _, err := env.Dev.DeliverRX(conns); err != nil {
			return 0, err
		}
		n := env.Drv.RxBurst(conns)
		var responses [][]byte
		for i := 0; i < n; i++ {
			if m := srv.HandleFrame(clk, env.Drv.Frames[i], txBufs[i]); m > 0 {
				responses = append(responses, txBufs[i][:m])
			}
		}
		if len(responses) > 0 {
			if err := env.Drv.TxBurst(responses); err != nil {
				return 0, err
			}
		}
	}
	if srv.Accepted == 0 || wrk.Handshakes == 0 {
		return 0, fmt.Errorf("bench: httpd handshakes missing")
	}
	elapsed := clk.Cycles() - start
	return float64(h.Served) * hw.ClockHz / float64(elapsed), nil
}
