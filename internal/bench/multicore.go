package bench

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"

	"atmosphere/internal/apps"
	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/obs"
	"atmosphere/internal/obs/account"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
)

// The multicore scalability series (the `-series multicore` run):
// throughput of three workloads at 1/2/4/8/16/32/64 cores under the
// sharded lock frontiers (per-container and per-endpoint; see
// docs/CONCURRENCY.md), the per-core page-frame caches, and work
// stealing. The paper's Atmosphere deliberately ships a big-lock kernel
// (§3, §7.2); this series shows what the sharded cost model buys back:
// IPC, formerly pinned at 1.0x because every round trip serialized on
// the one big-lock frontier, now runs each core's ping-pong in its own
// container on its own endpoint and scales with core count, while
// allocation and the kv-store scale until their serialized remainder
// (big-lock refills, the shared run queues) saturates — Amdahl's law on
// whatever the plans still share.
//
// Everything is a pure function of the cycle model and mcSeed: same
// seed, same core count ⇒ the same trace, byte for byte, which
// multicore_test.go pins per core.

const (
	// mcSeed seeds the deterministic workload generators.
	mcSeed = 42
	// mcBatch is the per-core page cache refill batch.
	mcBatch       = 32
	mcIPCRounds   = 400 // call/reply round trips per core
	mcKVRounds    = 256 // kv batches per core (8 set/get pairs each)
	mcKVBatch     = 8   // set/get pairs per batch
	mcKVYield     = 4   // batches between SysYield kernel crossings
	mcAllocPages  = 300 // 4 KiB pages mapped per core
	mcAllocVABase = 0x4000_0000
	mcAllocVAStep = 0x1000_0000 // per-core VA region stride
)

var mcCores = []int{1, 2, 4, 8, 16, 32, 64}

// mcFrames sizes the machine for a core count: the legacy 16384-frame
// shape up to 8 cores (keeping those reference rows bit-identical to
// the pre-sharding series) and a larger bank beyond, where the alloc
// workload alone needs mcAllocPages x cores user frames.
func mcFrames(n int) int {
	if n >= 16 {
		return 32768
	}
	return 16384
}

// MulticoreScaling measures simulated throughput of the ipc, kvstore,
// and alloc workloads across core counts.
func MulticoreScaling() (Result, error) {
	res := Result{
		ID:    "multicore",
		Title: "Multicore scalability under sharded lock frontiers (simulated)",
		Notes: []string{
			"ipc = call/reply ping-pong per core, each pair in its own container on its own endpoint (sharded frontiers)",
			"kvstore = per-core table compute with periodic yields; alloc = 4 KiB mmap via per-core page caches",
			"throughput = ops x 2.2 GHz / max per-core cycles; deterministic, seed " + fmt.Sprint(mcSeed),
		},
	}
	type speedup struct{ one, four, sixteen float64 }
	ups := map[string]*speedup{}
	for _, wl := range []string{"ipc", "kvstore", "alloc"} {
		ups[wl] = &speedup{}
		for _, n := range mcCores {
			ops, wall, err := runMulticore(wl, n, mcSeed)
			if err != nil {
				return Result{}, fmt.Errorf("bench: multicore %s %dc: %w", wl, n, err)
			}
			if wall == 0 {
				return Result{}, fmt.Errorf("bench: multicore %s %dc ran for zero cycles", wl, n)
			}
			mops := float64(ops) * hw.ClockHz / float64(wall) / 1e6
			res.Rows = append(res.Rows, Row{
				Name:  fmt.Sprintf("%s %dc", wl, n),
				Value: mops,
				Unit:  "Mops/s",
			})
			switch n {
			case 1:
				ups[wl].one = mops
			case 4:
				ups[wl].four = mops
			case 16:
				ups[wl].sixteen = mops
			}
		}
	}
	for _, wl := range []string{"ipc", "kvstore", "alloc"} {
		if u := ups[wl]; u.one > 0 {
			res.Notes = append(res.Notes,
				fmt.Sprintf("%s speedup over 1 core: %.2fx at 4, %.2fx at 16",
					wl, u.four/u.one, u.sixteen/u.one))
		}
	}
	return res, nil
}

// RunMulticore runs one sub-workload of the multicore series ("ipc",
// "kvstore", "alloc") on a cores-wide machine with the given
// observability sinks attached (any may be nil), for the CLIs. perCore
// scales the per-core operation count; <= 0 selects the series
// defaults. Returns (operations completed, simulated wall-clock cycles,
// total cycles summed across cores).
func RunMulticore(workload string, cores int, seed uint64, perCore int,
	tr *obs.Tracer, reg *obs.Registry, led *account.Ledger) (ops, wall, total uint64, err error) {
	savedT, savedM, savedL := benchTracer, benchMetrics, benchLedger
	benchTracer, benchMetrics, benchLedger = tr, reg, led
	defer func() { benchTracer, benchMetrics, benchLedger = savedT, savedM, savedL }()
	return runMulticoreN(workload, cores, seed, perCore)
}

// runMulticore runs a workload at the series' default sizing.
func runMulticore(workload string, n int, seed uint64) (ops, wall uint64, err error) {
	ops, wall, _, err = runMulticoreN(workload, n, seed, 0)
	return ops, wall, err
}

// runMulticoreN boots an n-core kernel with contention, per-core
// caches, and work stealing enabled, runs one workload driving all
// cores in lock step, and returns (operations completed, simulated
// wall-clock cycles = max per-core cycle delta, total cycles across
// cores).
func runMulticoreN(workload string, n int, seed uint64, perCore int) (ops, wall, total uint64, err error) {
	frames := mcFrames(n)
	ipcRounds, kvRounds, allocPages := mcIPCRounds, mcKVRounds, mcAllocPages
	if perCore > 0 {
		ipcRounds = perCore
		kvRounds = (perCore + 2*mcKVBatch - 1) / (2 * mcKVBatch)
		allocPages = perCore
		if allocPages > 1024 {
			allocPages = 1024 // stay within the machine's frame bank
		}
		if max := (frames - 4096) / n; allocPages > max {
			allocPages = max
		}
	}

	k, init, err := kernel.Boot(hw.Config{Frames: frames, Cores: n, TLBSlots: 256})
	if err != nil {
		return 0, 0, 0, err
	}
	attachObs(k)
	k.EnableCoreCaches(mcBatch)
	k.PM.EnableWorkStealing()

	// One root-container worker thread per core (kvstore and alloc; the
	// ipc workload builds its own per-core containers).
	newWorkers := func() ([]pm.Ptr, error) {
		workers := make([]pm.Ptr, n)
		for c := 0; c < n; c++ {
			r := k.SysNewThread(0, init, c)
			if r.Errno != kernel.OK {
				return nil, fmt.Errorf("new_thread core %d: %v", c, r.Errno)
			}
			workers[c] = pm.Ptr(r.Vals[0])
		}
		return workers, nil
	}

	var run func() (uint64, error)
	switch workload {
	case "ipc":
		run, err = mcSetupIPC(k, init, seed, ipcRounds)
	case "kvstore":
		var workers []pm.Ptr
		if workers, err = newWorkers(); err == nil {
			run, err = mcSetupKV(k, workers, seed, kvRounds)
		}
	case "alloc":
		var workers []pm.Ptr
		if workers, err = newWorkers(); err == nil {
			run, err = mcSetupAlloc(k, workers, allocPages)
		}
	default:
		return 0, 0, 0, fmt.Errorf("unknown multicore workload %q", workload)
	}
	if err != nil {
		return 0, 0, 0, err
	}

	// Setup ran uncontended from core 0 and skewed the clocks; align
	// them so "all cores start now" holds, then arm the contention
	// model. From here every syscall pays its deterministic lock wait.
	aligned := alignCores(k, n)
	k.EnableContention()

	ops, err = run()
	if err != nil {
		return 0, 0, 0, err
	}
	return ops, k.Machine.MaxCycles() - aligned, k.Machine.TotalCycles(), nil
}

// alignCores advances every core clock to the maximum across cores and
// returns that value — the series' common start line.
func alignCores(k *kernel.Kernel, n int) uint64 {
	var mx uint64
	for c := 0; c < n; c++ {
		if cy := k.Machine.Core(c).Clock.Cycles(); cy > mx {
			mx = cy
		}
	}
	for c := 0; c < n; c++ {
		clk := &k.Machine.Core(c).Clock
		clk.Charge(mx - clk.Cycles())
	}
	return mx
}

// mcSetupIPC builds the many-container ipc-parallel workload: each core
// gets its own container (pinned to that cpu) holding a client thread,
// a server thread, and a private endpoint; one operation is a full
// call/reply round trip. Every round trip's lock plan resolves to that
// core's container and endpoint frontiers alone, so distinct cores
// share nothing and the workload scales with core count — the exact
// traffic the old one-frontier model pinned at 1.0x.
func mcSetupIPC(k *kernel.Kernel, init pm.Ptr, seed uint64, rounds int) (func() (uint64, error), error) {
	n := k.Machine.NumCores()
	clients := make([]pm.Ptr, n)
	servers := make([]pm.Ptr, n)
	for c := 0; c < n; c++ {
		rc := k.SysNewContainer(0, init, 8, []int{c})
		if rc.Errno != kernel.OK {
			return nil, fmt.Errorf("ipc container core %d: %v", c, rc.Errno)
		}
		cntr := pm.Ptr(rc.Vals[0])
		rp := k.SysNewProcessIn(0, init, cntr)
		if rp.Errno != kernel.OK {
			return nil, fmt.Errorf("ipc process core %d: %v", c, rp.Errno)
		}
		proc := pm.Ptr(rp.Vals[0])
		for i, tp := range []*pm.Ptr{&clients[c], &servers[c]} {
			r := k.SysNewThreadIn(0, init, proc, c)
			if r.Errno != kernel.OK {
				return nil, fmt.Errorf("ipc thread %d core %d: %v", i, c, r.Errno)
			}
			*tp = pm.Ptr(r.Vals[0])
		}
		re := k.SysNewEndpoint(c, clients[c], 0)
		if re.Errno != kernel.OK {
			return nil, fmt.Errorf("ipc endpoint core %d: %v", c, re.Errno)
		}
		ep := pm.Ptr(re.Vals[0])
		k.PM.Thrd(servers[c]).Endpoints[0] = ep
		k.PM.EndpointIncRef(ep, 1)
		if r := k.SysRecv(c, servers[c], 0, kernel.RecvArgs{EdptSlot: -1}); r.Errno != kernel.EWOULDBLOCK {
			return nil, fmt.Errorf("ipc park core %d: %v", c, r.Errno)
		}
	}
	return func() (uint64, error) {
		var ops uint64
		for i := 0; i < rounds; i++ {
			for c := 0; c < n; c++ {
				msg := mcMix(seed ^ uint64(i)<<8 ^ uint64(c))
				if r := k.SysCall(c, clients[c], 0, kernel.SendArgs{Regs: [4]uint64{msg}}); r.Errno != kernel.EWOULDBLOCK {
					return ops, fmt.Errorf("ipc call core %d round %d: %v", c, i, r.Errno)
				}
				if r := k.SysReplyRecv(c, servers[c], 0, kernel.SendArgs{}, kernel.RecvArgs{EdptSlot: -1}); r.Errno != kernel.EWOULDBLOCK {
					return ops, fmt.Errorf("ipc reply_recv core %d round %d: %v", c, i, r.Errno)
				}
				ops++
			}
		}
		return ops, nil
	}, nil
}

// mcSetupKV gives each core a private kv table; one batch is mcKVBatch
// set/get pairs charged to the core's own clock (user compute, outside
// the lock) with a SysYield kernel crossing every mcKVYield batches.
// One operation is one served request (a set or a get).
func mcSetupKV(k *kernel.Kernel, workers []pm.Ptr, seed uint64, rounds int) (func() (uint64, error), error) {
	n := len(workers)
	stores := make([]*apps.KVStore, n)
	for c := 0; c < n; c++ {
		kv, err := apps.NewKVStore(1<<13, 8, 16)
		if err != nil {
			return nil, err
		}
		stores[c] = kv
	}
	// Pre-mix the seed so nearby seeds produce disjoint key sets; a raw
	// `seed ^ index` only permutes one key set when the index range
	// covers the low bits, and linear probing's aggregate cost is
	// insertion-order independent.
	base := mcMix(seed)
	return func() (uint64, error) {
		var ops uint64
		var key [8]byte
		var val [16]byte
		for i := 0; i < rounds; i++ {
			for c := 0; c < n; c++ {
				clk := &k.Machine.Core(c).Clock
				for j := 0; j < mcKVBatch; j++ {
					h := mcMix(base ^ uint64(c)<<32 ^ uint64(i*mcKVBatch+j))
					binary.LittleEndian.PutUint64(key[:], h)
					binary.LittleEndian.PutUint64(val[:], h^seed)
					binary.LittleEndian.PutUint64(val[8:], h+seed)
					if !stores[c].Set(clk, key[:], val[:]) {
						return ops, fmt.Errorf("kv set overflow core %d", c)
					}
					stores[c].Get(clk, key[:])
					ops += 2
				}
				if i%mcKVYield == mcKVYield-1 {
					if r := k.SysYield(c, workers[c]); r.Errno != kernel.OK {
						return ops, fmt.Errorf("kv yield core %d round %d: %v", c, i, r.Errno)
					}
				}
			}
		}
		return ops, nil
	}, nil
}

// mcSetupAlloc maps fresh 4 KiB pages, one per operation, each core in
// its own VA region. With per-core caches on, the page zero and the
// hand-out run outside the lock; only the batched refill and the
// page-table update serialize.
func mcSetupAlloc(k *kernel.Kernel, workers []pm.Ptr, pages int) (func() (uint64, error), error) {
	n := len(workers)
	return func() (uint64, error) {
		var ops uint64
		for i := 0; i < pages; i++ {
			for c := 0; c < n; c++ {
				va := hw.VirtAddr(mcAllocVABase + c*mcAllocVAStep + i*hw.PageSize4K)
				if r := k.SysMmap(c, workers[c], va, 1, hw.Size4K, pt.RW); r.Errno != kernel.OK {
					return ops, fmt.Errorf("alloc mmap core %d page %d: %v", c, i, r.Errno)
				}
				ops++
			}
		}
		return ops, nil
	}, nil
}

// mcMix is a SplitMix64-style finalizer: the series' deterministic
// stand-in for randomness.
func mcMix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// perCoreTraceHashes folds a tracer's event stream into one FNV-1a hash
// per core, keyed by each track's Perfetto pid (the core number).
// Machine-wide tracks (obs.MachinePID) are skipped. The determinism
// test compares these across repeated same-seed runs.
func perCoreTraceHashes(tr *obs.Tracer, cores int) []uint64 {
	hs := make([]uint64, cores)
	sums := make([]hash.Hash64, cores)
	for c := range sums {
		sums[c] = fnv.New64a()
	}
	tracks := tr.Tracks()
	var buf [8 * 5]byte
	for _, e := range tr.Events() {
		pid := tracks[e.Track].PID
		if pid < 0 || pid >= cores {
			continue
		}
		binary.LittleEndian.PutUint64(buf[0:], uint64(e.Kind)<<32|uint64(uint32(e.Name)))
		binary.LittleEndian.PutUint64(buf[8:], uint64(e.Track))
		binary.LittleEndian.PutUint64(buf[16:], e.TS)
		binary.LittleEndian.PutUint64(buf[24:], e.Dur)
		binary.LittleEndian.PutUint64(buf[32:], e.Arg)
		sums[pid].Write(buf[:])
	}
	for c := range sums {
		hs[c] = sums[c].Sum64()
	}
	return hs
}
