// Package bench regenerates every table and figure of the paper's
// evaluation (§6). Each experiment produces a Result whose rows mirror
// the paper's presentation, alongside the paper's reported values so
// the shape comparison (who wins, by what factor, where crossovers sit)
// is visible at a glance. cmd/atmo-bench prints them; bench_test.go
// wraps each in a testing.B benchmark.
package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Row is one line of an experiment's output.
type Row struct {
	Name string
	// Value is the measured (simulated) result; Paper is the paper's
	// reported value for the same cell (0 when the paper gives none).
	Value float64
	Paper float64
	// Unit labels both values.
	Unit string
}

// Result is one regenerated table or figure.
type Result struct {
	ID    string // "table3", "fig4", ...
	Title string
	Rows  []Row
	Notes []string
}

// String renders the result as an aligned text table.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	width := 10
	for _, row := range r.Rows {
		if len(row.Name) > width {
			width = len(row.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s  %14s  %14s  %s\n", width, "case", "measured", "paper", "unit")
	for _, row := range r.Rows {
		paper := "-"
		if row.Paper != 0 {
			paper = formatVal(row.Paper)
		}
		fmt.Fprintf(&b, "%-*s  %14s  %14s  %s\n", width, row.Name, formatVal(row.Value), paper, row.Unit)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func formatVal(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e7:
		return fmt.Sprintf("%d", int64(v))
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Experiment names an experiment runner.
type Experiment struct {
	ID  string
	Run func() (Result, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"table1", Table1ProofEffort},
		{"table2", Table2VerificationTime},
		{"table3", Table3SyscallLatency},
		{"fig2", Fig2PerFunctionTimes},
		{"fig3", Fig3DevelopmentHistory},
		{"fig4", Fig4IxgbePerformance},
		{"fig5", Fig5NvmePerformance},
		{"fig6", Fig6MaglevHttpd},
		{"fig7", Fig7KVStore},
		{"ablation", AblationFlatVsRecursive},
		{"degraded", DegradedNvmeThroughput},
		{"multicore", MulticoreScaling},
		{"batch", BatchThroughput},
		{"cluster", ClusterChaos},
	}
}

// Series groups experiments under a named series for `atmo-bench
// -series`: "multicore" is the scalability series, "batch" the syscall
// batching + zero-copy grant rows, "cluster" the multi-machine chaos
// scenario, "paper" the evaluation tables and figures, "all" everything.
func Series(name string) ([]Experiment, bool) {
	switch name {
	case "all":
		return All(), true
	case "multicore":
		e, _ := ByID("multicore")
		return []Experiment{e}, true
	case "batch":
		e, _ := ByID("batch")
		return []Experiment{e}, true
	case "cluster":
		e, _ := ByID("cluster")
		return []Experiment{e}, true
	case "paper":
		var out []Experiment
		for _, e := range All() {
			if e.ID != "multicore" && e.ID != "batch" && e.ID != "cluster" {
				out = append(out, e)
			}
		}
		return out, true
	}
	return nil, false
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists experiment identifiers.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}
