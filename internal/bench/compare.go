package bench

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Regression comparator against the frozen reference dump
// (bench_all_reference.txt, the seed's `atmo-bench` output). Only
// deterministic simulated quantities gate: cycle latencies (higher is
// worse) and simulated throughputs (lower is worse). Host-dependent
// measurements (wall-clock seconds/ms of the obligation suite) and
// static quantities (line counts, ratios, paper-only history) are
// never compared — they move with the build machine, not the model.

// RefRow is one measured cell of the reference dump.
type RefRow struct {
	Value float64
	Unit  string
}

// Reference maps experiment id -> case name -> reference measurement.
type Reference map[string]map[string]RefRow

var (
	refHeader = regexp.MustCompile(`^=== ([A-Za-z0-9_]+): `)
	refSplit  = regexp.MustCompile(`\s{2,}`)
)

// ParseReference reads an `atmo-bench` text dump: `=== id: title ===`
// section headers followed by aligned columns (case, measured, paper,
// unit). Column-header, note, and prose lines are skipped.
func ParseReference(r io.Reader) (Reference, error) {
	ref := make(Reference)
	var cur map[string]RefRow
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), " \t")
		if m := refHeader.FindStringSubmatch(line); m != nil {
			cur = make(map[string]RefRow)
			ref[m[1]] = cur
			continue
		}
		if cur == nil || line == "" || strings.HasPrefix(line, "note:") {
			continue
		}
		fields := refSplit.Split(line, -1)
		if len(fields) < 4 || fields[0] == "case" {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		unit := strings.Fields(fields[len(fields)-1])
		if len(unit) == 0 {
			continue
		}
		cur[strings.TrimSpace(fields[0])] = RefRow{Value: v, Unit: unit[0]}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: reading reference: %w", err)
	}
	if len(ref) == 0 {
		return nil, fmt.Errorf("bench: reference holds no experiments")
	}
	return ref, nil
}

// Gate direction per unit. Everything else is skipped.
var (
	lowerIsBetter  = map[string]bool{"cycles": true, "reqs": true}
	higherIsBetter = map[string]bool{"Mpps": true, "IOPS": true, "Kreq/s": true, "Mreq/s": true, "Mops/s": true}
)

// CompareToReference checks results against ref and returns one line
// per regression beyond tolPct percent in the unit's worse direction.
// Rows with a zero on either side, unit mismatches, unknown units, and
// experiments absent from the reference are skipped.
func CompareToReference(results []Result, ref Reference, tolPct float64) []string {
	var regressions []string
	for _, res := range results {
		refRows, ok := ref[res.ID]
		if !ok {
			continue
		}
		for _, row := range res.Rows {
			rr, ok := refRows[row.Name]
			if !ok || rr.Value == 0 || row.Value == 0 {
				continue
			}
			uf := strings.Fields(row.Unit)
			if len(uf) == 0 || uf[0] != rr.Unit {
				continue
			}
			var worsePct float64
			switch unit := uf[0]; {
			case lowerIsBetter[unit]:
				worsePct = 100 * (row.Value - rr.Value) / rr.Value
			case higherIsBetter[unit]:
				worsePct = 100 * (rr.Value - row.Value) / rr.Value
			default:
				continue
			}
			if worsePct > tolPct {
				regressions = append(regressions, fmt.Sprintf(
					"%s/%s: %s %s vs reference %s (%.1f%% worse)",
					res.ID, row.Name, formatVal(row.Value), rr.Unit, formatVal(rr.Value), worsePct))
			}
		}
	}
	return regressions
}
