package bench

import (
	"fmt"

	"atmosphere/internal/verify"
)

// Fig2PerFunctionTimes reproduces Figure 2: verification time for each
// function, sorted descending — the distribution matters (a few slow
// functions, a long fast tail), not the absolute values.
func Fig2PerFunctionTimes() (Result, error) {
	timings, total, err := verify.RunObligations(verify.Obligations(), 1)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		ID:    "fig2",
		Title: "Verification time for each function (obligation suite, sorted)",
	}
	for _, t := range timings {
		res.Rows = append(res.Rows, Row{
			Name:  fmt.Sprintf("%s [%s]", t.Name, t.Module),
			Value: t.Elapsed.Seconds() * 1000,
			Unit:  "ms",
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("total %.2fs sequential; paper: full verification 1m10s @8 threads on c220g5, 15s on an i9-13900hx laptop", total.Seconds()))
	return res, nil
}

// Fig3DevelopmentHistory reproduces Figure 3's summary: the three
// clean-slate versions of Atmosphere and their durations (§6.3). This
// is historical data reported by the paper, reproduced as reference.
func Fig3DevelopmentHistory() (Result, error) {
	return Result{
		ID:    "fig3",
		Title: "Atmosphere commit history (development stages, §6.3)",
		Rows: []Row{
			{Name: "v1: process manager + page allocator (1 person)", Value: 2, Paper: 2, Unit: "months"},
			{Name: "v2: pointer-centric + flat permissions (2 people)", Value: 8, Paper: 8, Unit: "months"},
			{Name: "v3: revocation, superpages, NI proofs (1 person, 50% reuse)", Value: 4, Paper: 4, Unit: "months"},
			{Name: "total effort", Value: 2.5, Paper: 2.5, Unit: "person-years"},
			{Name: "verified-code effort", Value: 1.5, Paper: 1.5, Unit: "person-years"},
		},
		Notes: []string{"static reference data from §6.3 (a development-history figure cannot be re-measured)"},
	}, nil
}
