package bench

import (
	"testing"

	"atmosphere/internal/obs"
)

// mcThroughput runs one multicore workload and returns ops per cycle of
// simulated wall clock (unit-free; ratios of these are speedups).
func mcThroughput(t *testing.T, workload string, cores int) float64 {
	t.Helper()
	ops, wall, err := runMulticore(workload, cores, mcSeed)
	if err != nil {
		t.Fatalf("%s %dc: %v", workload, cores, err)
	}
	if ops == 0 || wall == 0 {
		t.Fatalf("%s %dc: degenerate run (ops %d, wall %d)", workload, cores, ops, wall)
	}
	return float64(ops) / float64(wall)
}

// The acceptance gate of the series: workloads whose hot work runs
// outside the big lock (kvstore compute, alloc zeroing) must scale
// >1.5x at 4 cores, and IPC — formerly pinned at 1.0x because every
// round trip serialized on the one big-lock frontier — must now break
// that ceiling under the sharded frontiers: >2x at 4 cores and
// near-linear (>12x) at 16, since each core's ping-pong holds only its
// own container and endpoint frontiers.
func TestMulticoreScaling(t *testing.T) {
	for _, wl := range []string{"kvstore", "alloc"} {
		one := mcThroughput(t, wl, 1)
		four := mcThroughput(t, wl, 4)
		if s := four / one; s <= 1.5 {
			t.Errorf("%s speedup at 4 cores = %.2fx, want > 1.5x", wl, s)
		}
	}
	one := mcThroughput(t, "ipc", 1)
	four := mcThroughput(t, "ipc", 4)
	if s := four / one; s <= 2.0 {
		t.Errorf("ipc speedup at 4 cores = %.2fx, want > 2x (sharded frontiers)", s)
	}
	sixteen := mcThroughput(t, "ipc", 16)
	if s := sixteen / one; s <= 12.0 {
		t.Errorf("ipc speedup at 16 cores = %.2fx, want > 12x (near-linear)", s)
	}
}

// mcRunTraced runs every workload at the given core count into a fresh
// tracer and returns (per-core event hashes, total ops, total wall).
func mcRunTraced(t *testing.T, cores int, seed uint64) ([]uint64, uint64, uint64) {
	t.Helper()
	tr := obs.NewTracer(1 << 16)
	savedT, savedM := benchTracer, benchMetrics
	SetObs(tr, nil)
	defer SetObs(savedT, savedM)
	var ops, wall uint64
	for _, wl := range []string{"ipc", "kvstore", "alloc"} {
		o, w, err := runMulticore(wl, cores, seed)
		if err != nil {
			t.Fatalf("%s %dc: %v", wl, cores, err)
		}
		ops += o
		wall += w
	}
	return perCoreTraceHashes(tr, cores), ops, wall
}

// Same seed, same core count: repeated runs must produce byte-identical
// per-core traces at every core count in the series — the contention
// model, the per-core caches, and work stealing are all deterministic.
// A different seed must perturb at least one core's trace, or the hash
// would be proving nothing.
func TestMulticoreCrossCoreDeterminism(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		h1, ops1, wall1 := mcRunTraced(t, n, mcSeed)
		h2, ops2, wall2 := mcRunTraced(t, n, mcSeed)
		if ops1 != ops2 || wall1 != wall2 {
			t.Fatalf("%dc: same seed diverged: ops %d vs %d, wall %d vs %d", n, ops1, ops2, wall1, wall2)
		}
		for c := range h1 {
			if h1[c] != h2[c] {
				t.Errorf("%dc: core %d trace hash differs across same-seed runs: %016x vs %016x", n, c, h1[c], h2[c])
			}
		}
		h3, _, _ := mcRunTraced(t, n, mcSeed+1)
		same := true
		for c := range h1 {
			if h1[c] != h3[c] {
				same = false
			}
		}
		if same {
			t.Errorf("%dc: changing the seed left every per-core hash identical — hashes insensitive", n)
		}
	}
}

// Observability must stay free on the multicore paths too: attaching a
// tracer may not move a single cycle of any workload's simulated wall
// clock.
func TestTracingIsFreeMulticore(t *testing.T) {
	savedT, savedM := benchTracer, benchMetrics
	defer SetObs(savedT, savedM)
	for _, wl := range []string{"ipc", "kvstore", "alloc"} {
		SetObs(nil, nil)
		opsOff, wallOff, err := runMulticore(wl, 4, mcSeed)
		if err != nil {
			t.Fatal(err)
		}
		tr := obs.NewTracer(1 << 16)
		SetObs(tr, obs.NewRegistry())
		opsOn, wallOn, err := runMulticore(wl, 4, mcSeed)
		if err != nil {
			t.Fatal(err)
		}
		if opsOn != opsOff || wallOn != wallOff {
			t.Errorf("%s: tracing moved the run: ops %d->%d, wall %d->%d", wl, opsOff, opsOn, wallOff, wallOn)
		}
		if tr.Len() == 0 {
			t.Errorf("%s: tracer attached but recorded nothing", wl)
		}
	}
}
