package bench

import (
	"testing"

	"atmosphere/internal/obs"
	"atmosphere/internal/obs/account"
	"atmosphere/internal/obs/profile"
)

// Table 3 cycle costs of the deterministic cycle model. Observability
// must be free: attaching a tracer, metrics registry, and accounting
// ledger to the benchmark kernels may not move either number by a
// single cycle, and neither may this PR move them against the
// pre-observability baseline.
const (
	baselineCallReply = 1060.0
	baselineMapPage   = 1980.0
)

func TestTracingIsFree(t *testing.T) {
	SetObs(nil, nil)
	SetLedger(nil)
	defer func() {
		SetObs(nil, nil)
		SetLedger(nil)
	}()

	offIPC, err := atmoCallReplyCycles()
	if err != nil {
		t.Fatal(err)
	}
	offMap, err := atmoMapPageCycles()
	if err != nil {
		t.Fatal(err)
	}
	if offIPC != baselineCallReply {
		t.Errorf("call/reply without tracing = %v cycles, baseline %v", offIPC, baselineCallReply)
	}
	if offMap != baselineMapPage {
		t.Errorf("map-a-page without tracing = %v cycles, baseline %v", offMap, baselineMapPage)
	}

	tr := obs.NewTracer(1 << 12)
	ledger := account.NewLedger()
	SetObs(tr, obs.NewRegistry())
	SetLedger(ledger)
	onIPC, err := atmoCallReplyCycles()
	if err != nil {
		t.Fatal(err)
	}
	onMap, err := atmoMapPageCycles()
	if err != nil {
		t.Fatal(err)
	}
	if onIPC != offIPC {
		t.Errorf("tracing moved call/reply: %v -> %v cycles", offIPC, onIPC)
	}
	if onMap != offMap {
		t.Errorf("tracing moved map-a-page: %v -> %v cycles", offMap, onMap)
	}
	if tr.Len() == 0 {
		t.Error("tracer attached but recorded no events — the guard proved nothing")
	}
	// The profiler and auditor ride the same attach points: folding the
	// span stream must see the cycles the tracer saw, and the ledger's
	// closure audit must pass on the benchmark kernel it was bound to.
	if p := profile.Fold(tr); p.TotalCycles() == 0 {
		t.Error("profiler folded zero cycles from the benchmark trace")
	}
	if err := ledger.Audit(); err != nil {
		t.Errorf("ledger audit on benchmark kernel: %v", err)
	}
	if ledger.LivePages() == 0 {
		t.Error("ledger attached but tracked no pages — the guard proved nothing")
	}
}
