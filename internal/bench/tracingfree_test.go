package bench

import (
	"testing"

	"atmosphere/internal/obs"
)

// Table 3 cycle costs of the deterministic cycle model. Observability
// must be free: attaching a tracer and metrics registry to the
// benchmark kernels may not move either number by a single cycle, and
// neither may this PR move them against the pre-observability baseline.
const (
	baselineCallReply = 1060.0
	baselineMapPage   = 1980.0
)

func TestTracingIsFree(t *testing.T) {
	SetObs(nil, nil)
	defer SetObs(nil, nil)

	offIPC, err := atmoCallReplyCycles()
	if err != nil {
		t.Fatal(err)
	}
	offMap, err := atmoMapPageCycles()
	if err != nil {
		t.Fatal(err)
	}
	if offIPC != baselineCallReply {
		t.Errorf("call/reply without tracing = %v cycles, baseline %v", offIPC, baselineCallReply)
	}
	if offMap != baselineMapPage {
		t.Errorf("map-a-page without tracing = %v cycles, baseline %v", offMap, baselineMapPage)
	}

	tr := obs.NewTracer(1 << 12)
	SetObs(tr, obs.NewRegistry())
	onIPC, err := atmoCallReplyCycles()
	if err != nil {
		t.Fatal(err)
	}
	onMap, err := atmoMapPageCycles()
	if err != nil {
		t.Fatal(err)
	}
	if onIPC != offIPC {
		t.Errorf("tracing moved call/reply: %v -> %v cycles", offIPC, onIPC)
	}
	if onMap != offMap {
		t.Errorf("tracing moved map-a-page: %v -> %v cycles", offMap, onMap)
	}
	if tr.Len() == 0 {
		t.Error("tracer attached but recorded no events — the guard proved nothing")
	}
}
