package mem

import "atmosphere/internal/hw"

// PageState is the lifecycle state of a physical page (§4.2): every page
// is free (on a free list), mapped (in one or more address spaces),
// merged (a constituent of a 2 MiB or 1 GiB superpage), or allocated
// (backing a kernel data structure such as a process or a page table).
type PageState uint8

// Page lifecycle states.
const (
	// StateFree: on the free list of its size class.
	StateFree PageState = iota
	// StateMapped: mapped by one or more processes (RefCount tracks the
	// number of mappings; shared memory raises it above 1).
	StateMapped
	// StateMerged: a non-head constituent of a superpage; Head points to
	// the superpage's first page, which carries the real state.
	StateMerged
	// StateAllocated: backing a kernel object or page-table node; Owner
	// names the owning subsystem for closure checks.
	StateAllocated
)

// String implements fmt.Stringer.
func (s PageState) String() string {
	switch s {
	case StateFree:
		return "free"
	case StateMapped:
		return "mapped"
	case StateMerged:
		return "merged"
	case StateAllocated:
		return "allocated"
	}
	return "invalid"
}

// Owner identifies the subsystem a page is allocated to. The verifier
// uses owners to compute per-subsystem page closures without walking the
// object graph (the hierarchical closure argument of §4.2).
type Owner uint8

// Page owners.
const (
	OwnerNone Owner = iota
	OwnerBoot
	OwnerProcessMgr // containers, processes, threads, endpoints
	OwnerPageTable  // page-table nodes
	OwnerIOMMU      // IOMMU context and translation tables
	OwnerUser       // user-mapped frames (state mapped, not allocated)
	OwnerPCache     // frames parked in a per-core page-frame cache
)

// String implements fmt.Stringer.
func (o Owner) String() string {
	switch o {
	case OwnerNone:
		return "none"
	case OwnerBoot:
		return "boot"
	case OwnerProcessMgr:
		return "process-manager"
	case OwnerPageTable:
		return "page-table"
	case OwnerIOMMU:
		return "iommu"
	case OwnerUser:
		return "user"
	case OwnerPCache:
		return "page-cache"
	}
	return "invalid"
}

// nilIdx marks an empty link in the intrusive free lists.
const nilIdx = int32(-1)

// PageMeta is one entry of the page metadata array — the Linux-style
// struct-page array the paper describes. The Prev/Next links make the
// page a node of its free list; keeping the node inside the metadata is
// what gives the allocator constant-time removal when a scanned page is
// merged into a superpage (§4.2).
type PageMeta struct {
	State PageState
	Size  SizeClass
	Owner Owner
	// RefCount counts address-space mappings while State == StateMapped.
	RefCount uint32
	// Head is the frame index of the superpage head while merged.
	Head int32
	// Prev and Next link the page into its size class's free list while
	// free; nilIdx otherwise.
	Prev, Next int32
}

// SizeClass distinguishes the three allocation granularities.
type SizeClass = hw.PageSize

// Re-exported size classes for readability at call sites.
const (
	Size4K = hw.Size4K
	Size2M = hw.Size2M
	Size1G = hw.Size1G
)
