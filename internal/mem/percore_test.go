package mem

import (
	"testing"

	"atmosphere/internal/hw"
)

func newCacheFixture(t *testing.T, frames int) (*Allocator, *hw.Clock) {
	t.Helper()
	clk := &hw.Clock{}
	pm := hw.NewPhysMem(frames)
	return NewAllocator(pm, clk, 1), clk
}

// A hand-out from a warm cache must cost strictly less than the global
// cold path, and its local share must cover the pop and the zero.
func TestCoreCacheHandOutCosts(t *testing.T) {
	a, clk := newCacheFixture(t, 64)
	cc := NewCoreCaches(a, 2, 4)

	// First allocation: miss, batch refill of 4, then hand-out.
	before := clk.Cycles()
	p, local, err := cc.AllocUser4K(0)
	if err != nil {
		t.Fatalf("AllocUser4K: %v", err)
	}
	refillAndHandOut := clk.Cycles() - before
	if local != hw.CostAllocFast+hw.CostPageZero {
		t.Fatalf("local = %d, want %d", local, hw.CostAllocFast+hw.CostPageZero)
	}
	wantRefill := 4*(hw.CostAllocFast+hw.CostCacheMiss) + local
	if refillAndHandOut != uint64(wantRefill) {
		t.Fatalf("refill+hand-out = %d, want %d", refillAndHandOut, wantRefill)
	}
	if m, err := a.Meta(p); err != nil || m.State != StateMapped || m.RefCount != 1 {
		t.Fatalf("handed-out page meta = %+v, %v", m, err)
	}

	// Second allocation: warm hit, exactly the local cost, cheaper than
	// the global path's 2x cache-miss metadata walk.
	before = clk.Cycles()
	if _, local, err = cc.AllocUser4K(0); err != nil {
		t.Fatalf("warm AllocUser4K: %v", err)
	}
	hit := clk.Cycles() - before
	if hit != local {
		t.Fatalf("warm hand-out charged %d, local %d — refill leaked in", hit, local)
	}
	coldPath := uint64(hw.CostAllocFast + 2*hw.CostCacheMiss + hw.CostPageZero)
	if hit >= coldPath {
		t.Fatalf("warm hand-out (%d cycles) not cheaper than global path (%d)", hit, coldPath)
	}
	hits, misses, refills, _ := cc.Stats()
	if hits != 1 || misses != 1 || refills != 1 {
		t.Fatalf("stats = (%d hits, %d misses, %d refills)", hits, misses, refills)
	}
}

// Freeing through the cache parks frames locally and drains the surplus
// back to the global free list when the cache overfills.
func TestCoreCacheFreeAndDrain(t *testing.T) {
	a, _ := newCacheFixture(t, 64)
	cc := NewCoreCaches(a, 1, 2) // batch 2: drain when > 4 cached
	freeBefore := a.FreeCount4K()

	var pages []hw.PhysAddr
	for i := 0; i < 7; i++ {
		p, _, err := cc.AllocUser4K(0)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		pages = append(pages, p)
	}
	for i, p := range pages {
		if _, err := cc.FreeUser4K(0, p); err != nil {
			t.Fatalf("free %d: %v", i, err)
		}
	}
	// After draining, the cache holds at most 2*batch frames and the
	// rest are genuinely free again.
	if n := cc.Len(0); n > 4 {
		t.Fatalf("cache holds %d frames after drain, want <= 4", n)
	}
	if got := a.AllocatedTo(OwnerPCache); !got.Equal(cc.Pages()) {
		t.Fatalf("allocator sees %d cached frames, cache claims %d", got.Len(), cc.Pages().Len())
	}
	if err := cc.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if a.FreeCount4K() != freeBefore {
		t.Fatalf("free count %d after full drain, want %d", a.FreeCount4K(), freeBefore)
	}
	if a.AllocatedTo(OwnerPCache).Len() != 0 {
		t.Fatalf("frames still owned by page-cache after Drain")
	}
}

// Frames handed out by the cache are indistinguishable from global
// allocations to the rest of the system: DecRef frees them normally,
// and shared (refcount > 1) frames are rejected by the cache free path.
func TestCoreCacheInterop(t *testing.T) {
	a, _ := newCacheFixture(t, 16)
	cc := NewCoreCaches(a, 1, 2)
	p, _, err := cc.AllocUser4K(0)
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	if err := a.IncRef(p); err != nil {
		t.Fatalf("IncRef: %v", err)
	}
	if _, err := cc.FreeUser4K(0, p); err == nil {
		t.Fatalf("cache accepted a shared frame")
	}
	if _, err := a.DecRef(p); err != nil {
		t.Fatalf("DecRef: %v", err)
	}
	if freed, err := a.DecRef(p); err != nil || !freed {
		t.Fatalf("final DecRef = (%v, %v), want freed", freed, err)
	}
}

// The observer sees one lifecycle event per cache transition, in order.
func TestCoreCacheObserverEvents(t *testing.T) {
	a, _ := newCacheFixture(t, 16)
	var ops []PageOp
	a.SetObserver(func(op PageOp, p hw.PhysAddr, sc SizeClass) { ops = append(ops, op) })
	cc := NewCoreCaches(a, 1, 1)
	p, _, err := cc.AllocUser4K(0)
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	if _, err := cc.FreeUser4K(0, p); err != nil {
		t.Fatalf("free: %v", err)
	}
	if err := cc.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	want := []PageOp{OpCacheFill, OpCacheAlloc, OpCacheFree, OpCacheDrain}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops[%d] = %v, want %v", i, ops[i], want[i])
		}
	}
}
