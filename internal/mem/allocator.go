// Package mem implements the Atmosphere page allocator (§4.2): a
// Linux-style page metadata array with intrusive doubly-linked free
// lists at 4 KiB / 2 MiB / 1 GiB granularity, constant-time unlink via
// back pointers, superpage merge/split, and an explicit abstract state
// (Snapshot) the verifier quantifies over. Every page is in exactly one
// lifecycle state (free / mapped / merged / allocated), and every
// transition between states emits exactly one PageOp to the optional
// PageObserver — the accounting ledger's live feed — so ownership can be
// mirrored without scanning.
//
// CoreCaches (percore.go) adds per-core page-frame caches over one
// shared Allocator: the multicore fast path that takes the hot 4 KiB
// user-page allocation out from under the kernel big lock. Cached
// frames stay visible to the closure accounting as OwnerPCache.
//
// Observer contract: the PageObserver is synchronous, must never call
// back into the allocator, and is charged zero cycles — attaching one
// cannot move a benchmark number (bench.TestTracingIsFree pins this).
package mem

import (
	"errors"
	"fmt"

	"atmosphere/internal/hw"
)

// Allocation errors.
var (
	ErrOutOfMemory  = errors.New("mem: out of memory")
	ErrBadPage      = errors.New("mem: bad page pointer")
	ErrWrongState   = errors.New("mem: page in wrong state")
	ErrNotMergeable = errors.New("mem: no contiguous free range to merge")
)

// PageOp identifies one page lifecycle transition for the observer hook.
// Every transition that moves a page between the free/allocated/mapped
// states (or changes a mapped page's reference count) emits exactly one
// op, so an observer can maintain a live mirror of the page ownership
// state without ever scanning the page array.
type PageOp uint8

// Page lifecycle operations.
const (
	// OpAllocObj: a kernel-object page left the free list (AllocPage4K).
	OpAllocObj PageOp = iota
	// OpFreeObj: a kernel-object page returned to the free list (FreePage).
	OpFreeObj
	// OpAllocUser: a user page left the free list with refcount 1.
	OpAllocUser
	// OpIncRef: a mapped page gained a reference.
	OpIncRef
	// OpDecRef: a mapped page lost a reference but remains mapped.
	OpDecRef
	// OpFreeUser: a mapped page lost its last reference and was freed.
	OpFreeUser
	// OpCacheFill: a free 4 KiB page moved into a per-core page cache
	// (state allocated, owner page-cache).
	OpCacheFill
	// OpCacheAlloc: a cached page was handed out as a user mapping
	// (refcount 1) — the cache-hit allocation path.
	OpCacheAlloc
	// OpCacheFree: a user page's last mapping was released back into a
	// per-core cache instead of the global free list.
	OpCacheFree
	// OpCacheDrain: a cached page returned to the global free list.
	OpCacheDrain
)

// PageObserver receives page lifecycle events. Like the fault hook it is
// consulted synchronously under the caller's locking discipline; it must
// never call back into the allocator and must charge no cycles (the
// observability contract: attaching one cannot move a benchmark number).
type PageObserver func(op PageOp, p hw.PhysAddr, sc SizeClass)

// Allocator is the Atmosphere page allocator. Dynamic memory for kernel
// objects and user mappings is handed out at 4 KiB / 2 MiB / 1 GiB
// granularity, one object per page (§4.2). The allocator charges its
// work to the clock passed at construction so allocation cost shows up
// in every benchmark that allocates.
type Allocator struct {
	mem   *hw.PhysMem
	clock *hw.Clock
	pages []PageMeta
	// free list heads per size class, frame indices.
	head [3]int32
	// counts per size class for O(1) stats.
	freeCount [3]int
	// reserved counts frames permanently held by boot (frame 0 and the
	// kernel image).
	reserved int

	// faultHook, when set, is consulted before every allocation; a true
	// return fails the request with ErrOutOfMemory before any state is
	// touched (transient exhaustion, injected by the fault layer). The
	// failure is indistinguishable from a genuinely empty free list, so
	// every caller's ENOMEM path is exercised without corrupting state.
	faultHook func() bool

	// InjectedFailures counts allocations the hook failed.
	InjectedFailures uint64

	// observer, when set, sees every page lifecycle transition (the
	// accounting ledger's live feed). Never charged a cycle.
	observer PageObserver
}

// NewAllocator builds an allocator over all frames of mem, reserving the
// first reservedFrames frames for the boot environment (at least one, so
// that page pointer 0 is never a valid object — the kernel uses 0 as the
// null pointer, as Atmosphere does).
func NewAllocator(mem *hw.PhysMem, clock *hw.Clock, reservedFrames int) *Allocator {
	if reservedFrames < 1 {
		reservedFrames = 1
	}
	if reservedFrames > mem.Frames() {
		panic("mem: reserving more frames than exist")
	}
	a := &Allocator{
		mem:      mem,
		clock:    clock,
		pages:    make([]PageMeta, mem.Frames()),
		head:     [3]int32{nilIdx, nilIdx, nilIdx},
		reserved: reservedFrames,
	}
	for i := range a.pages {
		a.pages[i] = PageMeta{State: StateAllocated, Owner: OwnerBoot, Size: Size4K, Head: nilIdx, Prev: nilIdx, Next: nilIdx}
	}
	// Free everything above the reservation, highest first so the free
	// list pops low addresses first (deterministic, cache-friendly).
	for i := mem.Frames() - 1; i >= reservedFrames; i-- {
		a.pages[i].State = StateFree
		a.pages[i].Owner = OwnerNone
		a.pushFree(Size4K, int32(i))
	}
	return a
}

// Mem returns the physical memory the allocator manages.
func (a *Allocator) Mem() *hw.PhysMem { return a.mem }

// SetFaultHook installs (or, with nil, removes) the transient
// exhaustion hook.
func (a *Allocator) SetFaultHook(h func() bool) { a.faultHook = h }

// SetObserver installs (or, with nil, removes) the page lifecycle
// observer.
func (a *Allocator) SetObserver(ob PageObserver) { a.observer = ob }

// observe emits one lifecycle event if an observer is installed.
func (a *Allocator) observe(op PageOp, p hw.PhysAddr, sc SizeClass) {
	if a.observer != nil {
		a.observer(op, p, sc)
	}
}

// injectFail reports whether this allocation should fail transiently.
func (a *Allocator) injectFail() bool {
	if a.faultHook != nil && a.faultHook() {
		a.InjectedFailures++
		return true
	}
	return false
}

// Frames returns the number of managed frames.
func (a *Allocator) Frames() int { return len(a.pages) }

// FreeCount4K returns the number of free 4 KiB pages.
func (a *Allocator) FreeCount4K() int { return a.freeCount[Size4K] }

// FreeCount2M returns the number of free 2 MiB superpages.
func (a *Allocator) FreeCount2M() int { return a.freeCount[Size2M] }

// FreeCount1G returns the number of free 1 GiB superpages.
func (a *Allocator) FreeCount1G() int { return a.freeCount[Size1G] }

func (a *Allocator) idx(p hw.PhysAddr) (int32, error) {
	if uint64(p)%hw.PageSize4K != 0 || !a.mem.Contains(p, hw.PageSize4K) {
		return 0, fmt.Errorf("%w: %#x", ErrBadPage, p)
	}
	return int32(uint64(p) / hw.PageSize4K), nil
}

// Meta returns a copy of the metadata for page p (for the verifier and
// tests; mutation goes through the allocator API only).
func (a *Allocator) Meta(p hw.PhysAddr) (PageMeta, error) {
	i, err := a.idx(p)
	if err != nil {
		return PageMeta{}, err
	}
	return a.pages[i], nil
}

// --- intrusive free lists -------------------------------------------------

func (a *Allocator) pushFree(sc SizeClass, i int32) {
	pg := &a.pages[i]
	pg.Size = sc
	pg.Prev = nilIdx
	pg.Next = a.head[sc]
	if a.head[sc] != nilIdx {
		a.pages[a.head[sc]].Prev = i
	}
	a.head[sc] = i
	a.freeCount[sc]++
}

// unlinkFree removes page i from its free list in constant time using the
// back pointer stored in the metadata array — the optimization the paper
// calls out for superpage merging.
func (a *Allocator) unlinkFree(sc SizeClass, i int32) {
	pg := &a.pages[i]
	if pg.Prev != nilIdx {
		a.pages[pg.Prev].Next = pg.Next
	} else {
		a.head[sc] = pg.Next
	}
	if pg.Next != nilIdx {
		a.pages[pg.Next].Prev = pg.Prev
	}
	pg.Prev, pg.Next = nilIdx, nilIdx
	a.freeCount[sc]--
}

func (a *Allocator) popFree(sc SizeClass) (int32, bool) {
	i := a.head[sc]
	if i == nilIdx {
		return 0, false
	}
	a.unlinkFree(sc, i)
	return i, true
}

// --- allocation ------------------------------------------------------------

// AllocPage4K pops a free 4 KiB page, zeroes it, and marks it allocated
// to owner. The postconditions of the paper's alloc_page_4k() hold:
// the returned page was free before, the free set shrinks by exactly it,
// and the allocated set grows by exactly it (Listing 4).
func (a *Allocator) AllocPage4K(owner Owner) (hw.PhysAddr, error) {
	if a.injectFail() {
		return 0, fmt.Errorf("%w: no 4KiB pages (injected)", ErrOutOfMemory)
	}
	i, ok := a.popFree(Size4K)
	if !ok {
		return 0, fmt.Errorf("%w: no 4KiB pages", ErrOutOfMemory)
	}
	// Fast-path pop, cold page-array metadata (two lines), and the zero.
	a.clock.Charge(hw.CostAllocFast + 2*hw.CostCacheMiss + hw.CostPageZero)
	p := a.mem.FrameAddr(int(i))
	a.mem.ZeroPage(p)
	a.pages[i].State = StateAllocated
	a.pages[i].Owner = owner
	a.observe(OpAllocObj, p, Size4K)
	return p, nil
}

// AllocUserPage4K pops a free 4 KiB page for a user mapping: state
// mapped, refcount 1.
func (a *Allocator) AllocUserPage4K() (hw.PhysAddr, error) {
	if a.injectFail() {
		return 0, fmt.Errorf("%w: no 4KiB pages (injected)", ErrOutOfMemory)
	}
	i, ok := a.popFree(Size4K)
	if !ok {
		return 0, fmt.Errorf("%w: no 4KiB pages", ErrOutOfMemory)
	}
	a.clock.Charge(hw.CostAllocFast + 2*hw.CostCacheMiss + hw.CostPageZero)
	p := a.mem.FrameAddr(int(i))
	a.mem.ZeroPage(p)
	a.pages[i].State = StateMapped
	a.pages[i].Owner = OwnerUser
	a.pages[i].RefCount = 1
	a.observe(OpAllocUser, p, Size4K)
	return p, nil
}

// AllocUserPage pops a free page of size sc for a user mapping. Superpage
// heads carry the mapped state; constituents stay merged.
func (a *Allocator) AllocUserPage(sc SizeClass) (hw.PhysAddr, error) {
	if sc == Size4K {
		return a.AllocUserPage4K()
	}
	if a.injectFail() {
		return 0, fmt.Errorf("%w: no %v pages (injected)", ErrOutOfMemory, sc)
	}
	i, ok := a.popFree(sc)
	if !ok {
		return 0, fmt.Errorf("%w: no %v pages", ErrOutOfMemory, sc)
	}
	frames := int32(sc.Bytes() / hw.PageSize4K)
	a.clock.Charge(hw.CostAllocFast + uint64(frames)*hw.CostPageZero/8)
	p := a.mem.FrameAddr(int(i))
	a.pages[i].State = StateMapped
	a.pages[i].Owner = OwnerUser
	a.pages[i].RefCount = 1
	a.observe(OpAllocUser, p, sc)
	return p, nil
}

// IncRef adds one mapping reference to a mapped page (shared memory).
func (a *Allocator) IncRef(p hw.PhysAddr) error {
	i, err := a.idx(p)
	if err != nil {
		return err
	}
	pg := &a.pages[i]
	if pg.State != StateMapped {
		return fmt.Errorf("%w: incref of %v page %#x", ErrWrongState, pg.State, p)
	}
	a.clock.Charge(hw.CostCacheTouch)
	pg.RefCount++
	a.observe(OpIncRef, p, pg.Size)
	return nil
}

// RefCount returns the mapping reference count of p.
func (a *Allocator) RefCount(p hw.PhysAddr) (uint32, error) {
	i, err := a.idx(p)
	if err != nil {
		return 0, err
	}
	return a.pages[i].RefCount, nil
}

// DecRef drops one mapping reference; on the last reference the page
// returns to its size class's free list. Returns true if the page was
// freed.
func (a *Allocator) DecRef(p hw.PhysAddr) (bool, error) {
	i, err := a.idx(p)
	if err != nil {
		return false, err
	}
	pg := &a.pages[i]
	if pg.State != StateMapped || pg.RefCount == 0 {
		return false, fmt.Errorf("%w: decref of %v page %#x (ref %d)", ErrWrongState, pg.State, p, pg.RefCount)
	}
	a.clock.Charge(hw.CostCacheTouch)
	pg.RefCount--
	if pg.RefCount > 0 {
		a.observe(OpDecRef, p, pg.Size)
		return false, nil
	}
	sc := pg.Size
	pg.State = StateFree
	pg.Owner = OwnerNone
	a.pushFree(sc, i)
	a.observe(OpFreeUser, p, sc)
	return true, nil
}

// FreePage returns an allocated kernel-object page to the free list. The
// tracked permission to the object must be consumed by the caller before
// calling (in the Go port: the caller must have removed the object from
// its flat permission map).
func (a *Allocator) FreePage(p hw.PhysAddr) error {
	i, err := a.idx(p)
	if err != nil {
		return err
	}
	pg := &a.pages[i]
	if pg.State != StateAllocated {
		return fmt.Errorf("%w: free of %v page %#x", ErrWrongState, pg.State, p)
	}
	if pg.Owner == OwnerBoot && int(i) < a.reserved {
		return fmt.Errorf("%w: cannot free boot-reserved page %#x", ErrWrongState, p)
	}
	a.clock.Charge(hw.CostAllocFast)
	sc := pg.Size
	pg.State = StateFree
	pg.Owner = OwnerNone
	a.pushFree(sc, i)
	a.observe(OpFreeObj, p, sc)
	return nil
}

// --- per-core cache transitions ---------------------------------------------
//
// The four transitions below are the allocator half of the per-core
// page-frame caches (CoreCaches): free <-> cached <-> user-mapped.
// Cached frames are StateAllocated/OwnerPCache so the closure
// accounting (verify.MemoryWF, account.Audit) always sees them; the
// zero is deferred to hand-out, where it runs outside the big lock.

// MoveFreeToCache pops a free 4 KiB page into cached state (allocated,
// owner page-cache) without zeroing it — the batch-refill step, run
// under the big lock. The deferred zero is paid by CacheToUser.
func (a *Allocator) MoveFreeToCache() (hw.PhysAddr, error) {
	if a.injectFail() {
		return 0, fmt.Errorf("%w: no 4KiB pages (injected)", ErrOutOfMemory)
	}
	i, ok := a.popFree(Size4K)
	if !ok {
		return 0, fmt.Errorf("%w: no 4KiB pages", ErrOutOfMemory)
	}
	// Fast-path pop plus one cold metadata line; no zero yet.
	a.clock.Charge(hw.CostAllocFast + hw.CostCacheMiss)
	p := a.mem.FrameAddr(int(i))
	a.pages[i].State = StateAllocated
	a.pages[i].Owner = OwnerPCache
	a.observe(OpCacheFill, p, Size4K)
	return p, nil
}

// CacheToUser hands a cached page out as a user mapping (state mapped,
// refcount 1), paying the deferred zero. The metadata is core-local and
// cache-hot — this is the cycles the per-core cache removes from under
// the big lock relative to AllocUserPage4K's cold-list path.
func (a *Allocator) CacheToUser(p hw.PhysAddr) error {
	i, err := a.idx(p)
	if err != nil {
		return err
	}
	pg := &a.pages[i]
	if pg.State != StateAllocated || pg.Owner != OwnerPCache {
		return fmt.Errorf("%w: cache hand-out of %v/%v page %#x", ErrWrongState, pg.State, pg.Owner, p)
	}
	a.clock.Charge(hw.CostAllocFast + hw.CostPageZero)
	a.mem.ZeroPage(p)
	pg.State = StateMapped
	pg.Owner = OwnerUser
	pg.RefCount = 1
	a.observe(OpCacheAlloc, p, Size4K)
	return nil
}

// UserToCache takes back a user page whose last mapping reference is
// being released, parking it in cached state instead of the global free
// list — the core-local free path. The page must be mapped with
// refcount exactly 1 (shared pages go through DecRef).
func (a *Allocator) UserToCache(p hw.PhysAddr) error {
	i, err := a.idx(p)
	if err != nil {
		return err
	}
	pg := &a.pages[i]
	if pg.State != StateMapped || pg.RefCount != 1 || pg.Size != Size4K {
		return fmt.Errorf("%w: cache take-back of %v page %#x (ref %d, %v)",
			ErrWrongState, pg.State, p, pg.RefCount, pg.Size)
	}
	a.clock.Charge(hw.CostCacheTouch)
	pg.RefCount = 0
	pg.State = StateAllocated
	pg.Owner = OwnerPCache
	a.observe(OpCacheFree, p, Size4K)
	return nil
}

// CacheToFree returns a cached page to the global 4 KiB free list — the
// drain step, run under the big lock when a core's cache overflows.
func (a *Allocator) CacheToFree(p hw.PhysAddr) error {
	i, err := a.idx(p)
	if err != nil {
		return err
	}
	pg := &a.pages[i]
	if pg.State != StateAllocated || pg.Owner != OwnerPCache {
		return fmt.Errorf("%w: cache drain of %v/%v page %#x", ErrWrongState, pg.State, pg.Owner, p)
	}
	a.clock.Charge(hw.CostAllocFast)
	pg.State = StateFree
	pg.Owner = OwnerNone
	a.pushFree(Size4K, i)
	a.observe(OpCacheDrain, p, Size4K)
	return nil
}

// --- superpage merge / split ------------------------------------------------

// Merge2M scans the page array for a naturally aligned run of 512 free
// 4 KiB pages, unlinks each from the 4 KiB free list in constant time,
// marks the tail pages merged, and pushes the head onto the 2 MiB free
// list (§4.2). It returns the head address.
func (a *Allocator) Merge2M() (hw.PhysAddr, error) {
	return a.merge(Size2M, hw.Pages4KPer2M)
}

// Merge1G forms a 1 GiB superpage from 262144 contiguous free 4 KiB
// pages (they may already be partially merged into free 2 MiB pages;
// only fully free ranges qualify).
func (a *Allocator) Merge1G() (hw.PhysAddr, error) {
	return a.merge(Size1G, hw.Pages4KPer1G)
}

func (a *Allocator) merge(sc SizeClass, frames int) (hw.PhysAddr, error) {
	n := len(a.pages)
	for start := 0; start+frames <= n; start += frames {
		ok := true
		for i := start; i < start+frames; i++ {
			pg := &a.pages[i]
			if pg.State != StateFree || pg.Size != Size4K {
				ok = false
				break
			}
			a.clock.Charge(hw.CostCacheTouch)
		}
		if !ok {
			continue
		}
		for i := start; i < start+frames; i++ {
			a.unlinkFree(Size4K, int32(i)) // constant time via back pointer
			a.clock.Charge(hw.CostCacheTouch)
		}
		head := int32(start)
		for i := start + 1; i < start+frames; i++ {
			a.pages[i].State = StateMerged
			a.pages[i].Head = head
			a.pages[i].Size = sc
		}
		a.pages[head].State = StateFree
		a.pages[head].Head = nilIdx
		a.pushFree(sc, head)
		return a.mem.FrameAddr(start), nil
	}
	return 0, fmt.Errorf("%w: %v", ErrNotMergeable, sc)
}

// Split returns a free superpage's constituent 4 KiB pages to the 4 KiB
// free list.
func (a *Allocator) Split(p hw.PhysAddr) error {
	i, err := a.idx(p)
	if err != nil {
		return err
	}
	pg := &a.pages[i]
	if pg.State != StateFree || pg.Size == Size4K {
		return fmt.Errorf("%w: split of %v/%v page %#x", ErrWrongState, pg.State, pg.Size, p)
	}
	sc := pg.Size
	frames := int(sc.Bytes() / hw.PageSize4K)
	a.unlinkFree(sc, i)
	for j := int(i); j < int(i)+frames; j++ {
		a.pages[j].State = StateFree
		a.pages[j].Size = Size4K
		a.pages[j].Head = nilIdx
		a.pages[j].Owner = OwnerNone
		a.pushFree(Size4K, int32(j))
		a.clock.Charge(hw.CostCacheTouch)
	}
	return nil
}

// --- explicit allocator state (ghost view) ----------------------------------

// Snapshot is the abstract state of the allocator: the page sets the
// paper's specifications quantify over. Building it is O(frames); the
// kernel exposes it to the verifier, never to hot paths.
type Snapshot struct {
	Free4K    PageSet
	Free2M    PageSet
	Free1G    PageSet
	Allocated PageSet
	Mapped    PageSet
	Merged    PageSet
	Boot      PageSet
	// PCache is the subset of Allocated parked in per-core page-frame
	// caches (OwnerPCache). Specs treat these as free at the abstract
	// level — the cache is an implementation detail of the allocator —
	// while the closure checks still see them as allocated.
	PCache PageSet
}

// Snapshot captures the allocator's abstract state.
func (a *Allocator) Snapshot() Snapshot {
	s := Snapshot{
		Free4K: NewPageSet(), Free2M: NewPageSet(), Free1G: NewPageSet(),
		Allocated: NewPageSet(), Mapped: NewPageSet(), Merged: NewPageSet(),
		Boot: NewPageSet(), PCache: NewPageSet(),
	}
	for i := range a.pages {
		p := a.mem.FrameAddr(i)
		pg := &a.pages[i]
		switch pg.State {
		case StateFree:
			switch pg.Size {
			case Size4K:
				s.Free4K.Insert(p)
			case Size2M:
				s.Free2M.Insert(p)
			case Size1G:
				s.Free1G.Insert(p)
			}
		case StateAllocated:
			if pg.Owner == OwnerBoot {
				s.Boot.Insert(p)
			} else {
				s.Allocated.Insert(p)
				if pg.Owner == OwnerPCache {
					s.PCache.Insert(p)
				}
			}
		case StateMapped:
			s.Mapped.Insert(p)
		case StateMerged:
			s.Merged.Insert(p)
		}
	}
	return s
}

// AllocatedTo returns the set of pages allocated to owner — the raw
// material of per-subsystem page_closure() checks.
func (a *Allocator) AllocatedTo(owner Owner) PageSet {
	s := NewPageSet()
	for i := range a.pages {
		if a.pages[i].State == StateAllocated && a.pages[i].Owner == owner {
			s.Insert(a.mem.FrameAddr(i))
		}
	}
	return s
}

// WalkFreeList returns the frame addresses on the free list of sc in list
// order, for invariant checks that the list and the metadata agree.
func (a *Allocator) WalkFreeList(sc SizeClass) []hw.PhysAddr {
	var out []hw.PhysAddr
	for i := a.head[sc]; i != nilIdx; i = a.pages[i].Next {
		out = append(out, a.mem.FrameAddr(int(i)))
		if len(out) > len(a.pages) {
			panic("mem: free list cycle")
		}
	}
	return out
}
