package mem

import (
	"fmt"

	"atmosphere/internal/hw"
)

// CoreCaches gives each core a private stack of pre-reserved 4 KiB
// frames in front of one shared Allocator — the classic per-CPU page
// cache that lets a big-lock kernel scale its hottest allocation path.
// A hand-out from a warm cache touches only core-local state (pop +
// deferred zero), so the kernel can classify those cycles as *local*
// work that does not extend big-lock hold time; only the batched
// refill (cache empty) and drain (cache overfull) transitions reach
// the shared free lists and must run under the lock.
//
// Cached frames remain fully visible to the closure accounting: they
// are StateAllocated/OwnerPCache in the page metadata array, the
// ledger mirrors them under the PageCache pseudo-container, and
// verify.MemoryWF checks that the kernel's view of the caches matches
// AllocatedTo(OwnerPCache) exactly.
//
// Determinism: the caches are plain LIFO stacks refilled in free-list
// pop order, so for a fixed seed and drive order the sequence of
// physical addresses handed to each core is a pure function of the
// program — same trace hash at every core count.
type CoreCaches struct {
	alloc *Allocator
	batch int
	// frames[core] is that core's LIFO stack of cached frames.
	frames [][]hw.PhysAddr

	hits, misses, refills, drains uint64
}

// NewCoreCaches builds per-core caches over alloc for cores cores,
// refilling batch frames at a time and draining when a cache exceeds
// twice the batch.
func NewCoreCaches(alloc *Allocator, cores, batch int) *CoreCaches {
	if cores < 1 || batch < 1 {
		panic("mem: CoreCaches needs at least one core and a positive batch")
	}
	return &CoreCaches{
		alloc:  alloc,
		batch:  batch,
		frames: make([][]hw.PhysAddr, cores),
	}
}

// AllocUser4K hands core a zeroed user-mapped 4 KiB frame (state
// mapped, refcount 1). The returned local count is the cycles of the
// hand-out itself — the core-private pop and deferred zero — which the
// kernel subtracts from its big-lock hold time; refill cycles are
// excluded because refills walk the shared free lists.
func (cc *CoreCaches) AllocUser4K(core int) (p hw.PhysAddr, local uint64, err error) {
	st := cc.frames[core]
	if len(st) == 0 {
		cc.misses++
		cc.refills++
		for i := 0; i < cc.batch; i++ {
			f, ferr := cc.alloc.MoveFreeToCache()
			if ferr != nil {
				if i == 0 {
					return 0, 0, ferr
				}
				break // partial refill: hand out what we got
			}
			st = append(st, f)
		}
	} else {
		cc.hits++
	}
	p = st[len(st)-1]
	cc.frames[core] = st[:len(st)-1]
	before := cc.alloc.clock.Cycles()
	if err := cc.alloc.CacheToUser(p); err != nil {
		// Unreachable unless the cache was corrupted externally; put the
		// frame back so the stack stays consistent with the metadata.
		cc.frames[core] = st
		return 0, 0, err
	}
	return p, cc.alloc.clock.Cycles() - before, nil
}

// FreeUser4K takes back a user frame whose last mapping reference core
// is releasing, parking it in core's cache. When the cache exceeds
// twice the refill batch, the surplus drains to the global free list
// (locked work, excluded from the local count).
func (cc *CoreCaches) FreeUser4K(core int, p hw.PhysAddr) (local uint64, err error) {
	before := cc.alloc.clock.Cycles()
	if err := cc.alloc.UserToCache(p); err != nil {
		return 0, err
	}
	local = cc.alloc.clock.Cycles() - before
	cc.frames[core] = append(cc.frames[core], p)
	if len(cc.frames[core]) > 2*cc.batch {
		cc.drains++
		st := cc.frames[core]
		for len(st) > cc.batch {
			f := st[len(st)-1]
			if derr := cc.alloc.CacheToFree(f); derr != nil {
				cc.frames[core] = st
				return local, derr
			}
			st = st[:len(st)-1]
		}
		cc.frames[core] = st
	}
	return local, nil
}

// Drain returns every cached frame on every core to the global free
// list (teardown, or quiescing before a verification pass that wants
// empty caches).
func (cc *CoreCaches) Drain() error {
	for core, st := range cc.frames {
		for len(st) > 0 {
			f := st[len(st)-1]
			if err := cc.alloc.CacheToFree(f); err != nil {
				cc.frames[core] = st
				return err
			}
			st = st[:len(st)-1]
		}
		cc.frames[core] = nil
	}
	return nil
}

// Pages returns the set of frames currently parked in any core's
// cache — the kernel's own view, which verify.MemoryWF compares
// against the allocator's AllocatedTo(OwnerPCache) closure.
func (cc *CoreCaches) Pages() PageSet {
	s := NewPageSet()
	for _, st := range cc.frames {
		for _, p := range st {
			s.Insert(p)
		}
	}
	return s
}

// Len reports how many frames core currently holds cached.
func (cc *CoreCaches) Len(core int) int { return len(cc.frames[core]) }

// Batch reports the refill batch size; a cache drains back to it when
// its depth exceeds twice the batch. The kernel's lock planner uses
// both thresholds to predict whether an mmap/munmap can stay off the
// shared free lists (and hence off the big lock).
func (cc *CoreCaches) Batch() int { return cc.batch }

// Stats reports (cache hits, misses, batch refills, drains) since
// construction.
func (cc *CoreCaches) Stats() (hits, misses, refills, drains uint64) {
	return cc.hits, cc.misses, cc.refills, cc.drains
}

// String summarizes cache occupancy for debugging.
func (cc *CoreCaches) String() string {
	total := 0
	for _, st := range cc.frames {
		total += len(st)
	}
	return fmt.Sprintf("pcache{cores=%d cached=%d hits=%d misses=%d}", len(cc.frames), total, cc.hits, cc.misses)
}
