// Package mem implements Atmosphere's physical page allocator (§4.2):
// a page metadata array covering every 4 KiB frame, three doubly-linked
// free lists (4 KiB, 2 MiB, 1 GiB) with constant-time unlink via back
// pointers stored in the metadata array, superpage merge and split, and
// the four-state page lifecycle (free, mapped, merged, allocated).
//
// The allocator exposes its internal state explicitly — the sets of free,
// allocated, mapped, and merged pages — because the paper's leak-freedom
// and non-interference arguments require exact knowledge of all memory in
// the system ("Explicit memory allocator state", §4.2). internal/verify
// checks those sets against the metadata array and against the
// page_closure() of every subsystem after every kernel transition.
package mem

import (
	"sort"

	"atmosphere/internal/hw"
)

// PageSet is a set of physical page addresses. It is the currency of the
// paper's page_closure() reasoning: each subsystem reports the set of
// pages it owns, and the verifier checks pairwise disjointness and that
// the union of all closures plus the free set covers physical memory.
type PageSet map[hw.PhysAddr]struct{}

// NewPageSet returns a set containing the given pages.
func NewPageSet(pages ...hw.PhysAddr) PageSet {
	s := make(PageSet, len(pages))
	for _, p := range pages {
		s[p] = struct{}{}
	}
	return s
}

// Insert adds p to the set.
func (s PageSet) Insert(p hw.PhysAddr) { s[p] = struct{}{} }

// Remove deletes p from the set.
func (s PageSet) Remove(p hw.PhysAddr) { delete(s, p) }

// Contains reports membership.
func (s PageSet) Contains(p hw.PhysAddr) bool {
	_, ok := s[p]
	return ok
}

// Len returns the cardinality.
func (s PageSet) Len() int { return len(s) }

// Clone returns a copy of the set.
func (s PageSet) Clone() PageSet {
	out := make(PageSet, len(s))
	for p := range s {
		out[p] = struct{}{}
	}
	return out
}

// Union adds every element of other to s and returns s.
func (s PageSet) Union(other PageSet) PageSet {
	for p := range other {
		s[p] = struct{}{}
	}
	return s
}

// Disjoint reports whether s and other share no element.
func (s PageSet) Disjoint(other PageSet) bool {
	small, large := s, other
	if len(large) < len(small) {
		small, large = large, small
	}
	for p := range small {
		if large.Contains(p) {
			return false
		}
	}
	return true
}

// Equal reports whether s and other contain exactly the same pages.
func (s PageSet) Equal(other PageSet) bool {
	if len(s) != len(other) {
		return false
	}
	for p := range s {
		if !other.Contains(p) {
			return false
		}
	}
	return true
}

// Subset reports whether every element of s is in other.
func (s PageSet) Subset(other PageSet) bool {
	if len(s) > len(other) {
		return false
	}
	for p := range s {
		if !other.Contains(p) {
			return false
		}
	}
	return true
}

// Sorted returns the elements in ascending order (for deterministic
// iteration and error messages).
func (s PageSet) Sorted() []hw.PhysAddr {
	out := make([]hw.PhysAddr, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
