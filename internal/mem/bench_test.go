package mem

import (
	"testing"

	"atmosphere/internal/hw"
)

func benchAlloc(b *testing.B, frames int) *Allocator {
	b.Helper()
	m := hw.NewPhysMem(frames)
	var clk hw.Clock
	return NewAllocator(m, &clk, 1)
}

func BenchmarkAllocFree4K(b *testing.B) {
	a := benchAlloc(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := a.AllocPage4K(OwnerProcessMgr)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.FreePage(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUserPageRefCycle(b *testing.B) {
	a := benchAlloc(b, 1024)
	p, err := a.AllocUserPage4K()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.IncRef(p); err != nil {
			b.Fatal(err)
		}
		if _, err := a.DecRef(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMerge2MSplit(b *testing.B) {
	a := benchAlloc(b, 2*hw.Pages4KPer2M)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := a.Merge2M()
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Split(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshot(b *testing.B) {
	a := benchAlloc(b, 4096)
	for i := 0; i < 512; i++ {
		if _, err := a.AllocPage4K(OwnerProcessMgr); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := a.Snapshot()
		if s.Allocated.Len() < 512 {
			b.Fatal("snapshot lost pages")
		}
	}
}
