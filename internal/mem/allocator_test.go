package mem

import (
	"errors"
	"testing"
	"testing/quick"

	"atmosphere/internal/hw"
)

func newTestAlloc(frames int) *Allocator {
	m := hw.NewPhysMem(frames)
	var clk hw.Clock
	return NewAllocator(m, &clk, 1)
}

func TestAllocFreeRoundTrip(t *testing.T) {
	a := newTestAlloc(16)
	before := a.FreeCount4K()
	p, err := a.AllocPage4K(OwnerProcessMgr)
	if err != nil {
		t.Fatal(err)
	}
	if a.FreeCount4K() != before-1 {
		t.Fatal("free count did not shrink by one")
	}
	meta, _ := a.Meta(p)
	if meta.State != StateAllocated || meta.Owner != OwnerProcessMgr {
		t.Fatalf("meta = %+v", meta)
	}
	if err := a.FreePage(p); err != nil {
		t.Fatal(err)
	}
	if a.FreeCount4K() != before {
		t.Fatal("free count did not return")
	}
}

func TestAllocZeroesPage(t *testing.T) {
	a := newTestAlloc(8)
	p, _ := a.AllocPage4K(OwnerPageTable)
	a.Mem().Write(p, []byte{1, 2, 3})
	a.FreePage(p)
	q, _ := a.AllocPage4K(OwnerPageTable)
	for q != p {
		// drain until we get the same frame back
		var err error
		q, err = a.AllocPage4K(OwnerPageTable)
		if err != nil {
			t.Fatal("never got recycled frame")
		}
	}
	for i, b := range a.Mem().Read(q, 8) {
		if b != 0 {
			t.Fatalf("recycled page byte %d = %d, want 0", i, b)
		}
	}
}

func TestAllocNeverReturnsNull(t *testing.T) {
	a := newTestAlloc(8)
	for {
		p, err := a.AllocPage4K(OwnerProcessMgr)
		if err != nil {
			break
		}
		if p == 0 {
			t.Fatal("allocator returned the null page")
		}
	}
}

func TestOutOfMemory(t *testing.T) {
	a := newTestAlloc(4)
	var got []hw.PhysAddr
	for {
		p, err := a.AllocPage4K(OwnerProcessMgr)
		if err != nil {
			if !errors.Is(err, ErrOutOfMemory) {
				t.Fatalf("wrong error: %v", err)
			}
			break
		}
		got = append(got, p)
	}
	if len(got) != 3 { // 4 frames minus 1 reserved
		t.Fatalf("allocated %d pages from 4-frame machine", len(got))
	}
}

func TestDoubleFreeRejected(t *testing.T) {
	a := newTestAlloc(8)
	p, _ := a.AllocPage4K(OwnerProcessMgr)
	if err := a.FreePage(p); err != nil {
		t.Fatal(err)
	}
	if err := a.FreePage(p); !errors.Is(err, ErrWrongState) {
		t.Fatalf("double free not rejected: %v", err)
	}
}

func TestFreeBootReservedRejected(t *testing.T) {
	a := newTestAlloc(8)
	if err := a.FreePage(0); !errors.Is(err, ErrWrongState) {
		t.Fatalf("freeing boot page not rejected: %v", err)
	}
}

func TestBadPointerRejected(t *testing.T) {
	a := newTestAlloc(8)
	if err := a.FreePage(123); !errors.Is(err, ErrBadPage) {
		t.Fatal("unaligned pointer not rejected")
	}
	if err := a.FreePage(hw.PhysAddr(1 << 40)); !errors.Is(err, ErrBadPage) {
		t.Fatal("out-of-range pointer not rejected")
	}
}

func TestUserPageRefCounting(t *testing.T) {
	a := newTestAlloc(8)
	p, err := a.AllocUserPage4K()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.IncRef(p); err != nil {
		t.Fatal(err)
	}
	if rc, _ := a.RefCount(p); rc != 2 {
		t.Fatalf("refcount = %d", rc)
	}
	freed, err := a.DecRef(p)
	if err != nil || freed {
		t.Fatalf("first decref freed=%v err=%v", freed, err)
	}
	freed, err = a.DecRef(p)
	if err != nil || !freed {
		t.Fatalf("last decref freed=%v err=%v", freed, err)
	}
	meta, _ := a.Meta(p)
	if meta.State != StateFree {
		t.Fatalf("state after final decref = %v", meta.State)
	}
	if _, err := a.DecRef(p); !errors.Is(err, ErrWrongState) {
		t.Fatal("decref of free page not rejected")
	}
}

func TestIncRefOfAllocatedRejected(t *testing.T) {
	a := newTestAlloc(8)
	p, _ := a.AllocPage4K(OwnerProcessMgr)
	if err := a.IncRef(p); !errors.Is(err, ErrWrongState) {
		t.Fatal("incref of kernel page not rejected")
	}
}

func TestMerge2M(t *testing.T) {
	// 2 MiB = 512 frames; give the machine 3 superpages' worth.
	a := newTestAlloc(3 * hw.Pages4KPer2M)
	free4kBefore := a.FreeCount4K()
	p, err := a.Merge2M()
	if err != nil {
		t.Fatal(err)
	}
	if !hw.Aligned2M(uint64(p)) {
		t.Fatalf("merged head %#x not 2M aligned", p)
	}
	if a.FreeCount2M() != 1 {
		t.Fatalf("2M free count = %d", a.FreeCount2M())
	}
	if a.FreeCount4K() != free4kBefore-hw.Pages4KPer2M {
		t.Fatalf("4K free count = %d", a.FreeCount4K())
	}
	head, _ := a.Meta(p)
	if head.State != StateFree || head.Size != Size2M {
		t.Fatalf("head meta = %+v", head)
	}
	tail, _ := a.Meta(p + hw.PageSize4K)
	if tail.State != StateMerged || tail.Head != int32(uint64(p)/hw.PageSize4K) {
		t.Fatalf("tail meta = %+v", tail)
	}
}

func TestMerge2MSkipsBusyRanges(t *testing.T) {
	a := newTestAlloc(2 * hw.Pages4KPer2M)
	// Frame 0 is boot-reserved, so the first 2M range can never merge;
	// the second range must be chosen.
	p, err := a.Merge2M()
	if err != nil {
		t.Fatal(err)
	}
	if p != hw.PhysAddr(hw.PageSize2M) {
		t.Fatalf("merge picked %#x, want second range", p)
	}
	// Now nothing else can merge.
	if _, err := a.Merge2M(); !errors.Is(err, ErrNotMergeable) {
		t.Fatal("second merge should fail")
	}
}

func TestAllocUserSuperpage(t *testing.T) {
	a := newTestAlloc(2 * hw.Pages4KPer2M)
	if _, err := a.AllocUserPage(Size2M); !errors.Is(err, ErrOutOfMemory) {
		t.Fatal("superpage alloc before merge should fail")
	}
	if _, err := a.Merge2M(); err != nil {
		t.Fatal(err)
	}
	p, err := a.AllocUserPage(Size2M)
	if err != nil {
		t.Fatal(err)
	}
	meta, _ := a.Meta(p)
	if meta.State != StateMapped || meta.Size != Size2M || meta.RefCount != 1 {
		t.Fatalf("superpage meta = %+v", meta)
	}
	freed, err := a.DecRef(p)
	if err != nil || !freed {
		t.Fatal("superpage decref failed")
	}
	if a.FreeCount2M() != 1 {
		t.Fatal("superpage did not return to 2M list")
	}
}

func TestSplit(t *testing.T) {
	a := newTestAlloc(2 * hw.Pages4KPer2M)
	p, err := a.Merge2M()
	if err != nil {
		t.Fatal(err)
	}
	before4k := a.FreeCount4K()
	if err := a.Split(p); err != nil {
		t.Fatal(err)
	}
	if a.FreeCount4K() != before4k+hw.Pages4KPer2M {
		t.Fatal("split did not return constituents")
	}
	if a.FreeCount2M() != 0 {
		t.Fatal("split left superpage on list")
	}
	meta, _ := a.Meta(p + hw.PageSize4K)
	if meta.State != StateFree || meta.Size != Size4K {
		t.Fatalf("constituent meta = %+v", meta)
	}
}

func TestSplitOf4KRejected(t *testing.T) {
	a := newTestAlloc(8)
	p, _ := a.AllocPage4K(OwnerProcessMgr)
	a.FreePage(p)
	if err := a.Split(p); !errors.Is(err, ErrWrongState) {
		t.Fatal("split of 4K page not rejected")
	}
}

func TestMerge1GImpossibleOnSmallMachine(t *testing.T) {
	a := newTestAlloc(1024)
	if _, err := a.Merge1G(); !errors.Is(err, ErrNotMergeable) {
		t.Fatal("1G merge on 4MiB machine should fail")
	}
}

// TestLeakFreedomInvariant is the executable form of the paper's leak
// freedom statement: after an arbitrary interleaving of allocator
// operations, the page sets partition physical memory exactly.
func TestLeakFreedomInvariant(t *testing.T) {
	a := newTestAlloc(4 * hw.Pages4KPer2M)
	r := hw.NewRand(1234)
	var kernelPages, userPages, super []hw.PhysAddr
	for step := 0; step < 5000; step++ {
		switch r.Intn(7) {
		case 0, 1:
			if p, err := a.AllocPage4K(OwnerProcessMgr); err == nil {
				kernelPages = append(kernelPages, p)
			}
		case 2:
			if p, err := a.AllocUserPage4K(); err == nil {
				userPages = append(userPages, p)
			}
		case 3:
			if len(kernelPages) > 0 {
				i := r.Intn(len(kernelPages))
				if err := a.FreePage(kernelPages[i]); err != nil {
					t.Fatal(err)
				}
				kernelPages = append(kernelPages[:i], kernelPages[i+1:]...)
			}
		case 4:
			if len(userPages) > 0 {
				i := r.Intn(len(userPages))
				if _, err := a.DecRef(userPages[i]); err != nil {
					t.Fatal(err)
				}
				userPages = append(userPages[:i], userPages[i+1:]...)
			}
		case 5:
			if p, err := a.Merge2M(); err == nil {
				super = append(super, p)
			}
		case 6:
			if len(super) > 0 {
				i := r.Intn(len(super))
				if err := a.Split(super[i]); err != nil {
					t.Fatal(err)
				}
				super = append(super[:i], super[i+1:]...)
			}
		}
	}
	checkPartition(t, a)
}

// checkPartition verifies free ∪ allocated ∪ mapped ∪ merged ∪ boot covers
// every frame exactly once and agrees with the free lists.
func checkPartition(t *testing.T, a *Allocator) {
	t.Helper()
	s := a.Snapshot()
	total := s.Free4K.Len() + s.Free2M.Len() + s.Free1G.Len() +
		s.Allocated.Len() + s.Mapped.Len() + s.Merged.Len() + s.Boot.Len()
	if total != a.Frames() {
		t.Fatalf("partition covers %d of %d frames", total, a.Frames())
	}
	sets := []PageSet{s.Free4K, s.Free2M, s.Free1G, s.Allocated, s.Mapped, s.Merged, s.Boot}
	for i := range sets {
		for j := i + 1; j < len(sets); j++ {
			if !sets[i].Disjoint(sets[j]) {
				t.Fatalf("page sets %d and %d overlap", i, j)
			}
		}
	}
	list4k := NewPageSet(a.WalkFreeList(Size4K)...)
	if !list4k.Equal(s.Free4K) {
		t.Fatalf("4K free list (%d) disagrees with metadata (%d)", list4k.Len(), s.Free4K.Len())
	}
	list2m := NewPageSet(a.WalkFreeList(Size2M)...)
	if !list2m.Equal(s.Free2M) {
		t.Fatal("2M free list disagrees with metadata")
	}
}

func TestFreeListWalkMatchesCount(t *testing.T) {
	a := newTestAlloc(64)
	if got := len(a.WalkFreeList(Size4K)); got != a.FreeCount4K() {
		t.Fatalf("walk %d != count %d", got, a.FreeCount4K())
	}
}

func TestAllocatedTo(t *testing.T) {
	a := newTestAlloc(16)
	p1, _ := a.AllocPage4K(OwnerProcessMgr)
	p2, _ := a.AllocPage4K(OwnerPageTable)
	pm := a.AllocatedTo(OwnerProcessMgr)
	if !pm.Contains(p1) || pm.Contains(p2) || pm.Len() != 1 {
		t.Fatalf("AllocatedTo wrong: %v", pm.Sorted())
	}
}

func TestPageSetOps(t *testing.T) {
	s := NewPageSet(0x1000, 0x2000)
	u := NewPageSet(0x3000)
	if !s.Disjoint(u) {
		t.Fatal("disjoint sets reported overlapping")
	}
	s.Union(u)
	if s.Len() != 3 || !s.Contains(0x3000) {
		t.Fatal("union failed")
	}
	c := s.Clone()
	c.Remove(0x1000)
	if !s.Contains(0x1000) {
		t.Fatal("clone aliases original")
	}
	if !u.Subset(s) || s.Subset(u) {
		t.Fatal("subset logic wrong")
	}
	if !s.Equal(NewPageSet(0x1000, 0x2000, 0x3000)) {
		t.Fatal("equal failed")
	}
	sorted := s.Sorted()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] >= sorted[i] {
			t.Fatal("Sorted not ascending")
		}
	}
}

// Property: alloc then free restores the exact abstract state.
func TestAllocFreeIsIdentityOnAbstractState(t *testing.T) {
	a := newTestAlloc(32)
	f := func(n uint8) bool {
		before := a.Snapshot()
		count := int(n%8) + 1
		var ps []hw.PhysAddr
		for i := 0; i < count; i++ {
			p, err := a.AllocPage4K(OwnerProcessMgr)
			if err != nil {
				break
			}
			ps = append(ps, p)
		}
		for _, p := range ps {
			if err := a.FreePage(p); err != nil {
				return false
			}
		}
		after := a.Snapshot()
		return before.Free4K.Equal(after.Free4K) && before.Allocated.Equal(after.Allocated)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property (Listing 4 postconditions): each alloc removes exactly the
// returned page from the free set and adds exactly it to the allocated set.
func TestAllocPostconditions(t *testing.T) {
	a := newTestAlloc(64)
	for i := 0; i < 20; i++ {
		before := a.Snapshot()
		p, err := a.AllocPage4K(OwnerProcessMgr)
		if err != nil {
			t.Fatal(err)
		}
		after := a.Snapshot()
		if !before.Free4K.Contains(p) {
			t.Fatal("returned page was not previously free")
		}
		want := before.Free4K.Clone()
		want.Remove(p)
		if !after.Free4K.Equal(want) {
			t.Fatal("free set changed by more than the returned page")
		}
		wantAlloc := before.Allocated.Clone()
		wantAlloc.Insert(p)
		if !after.Allocated.Equal(wantAlloc) {
			t.Fatal("allocated set changed by more than the returned page")
		}
	}
}
