// Package baselines models the unverified comparison systems of the
// evaluation — the Linux in-kernel paths (sockets, the multi-queue
// block layer), the kernel-bypass frameworks (DPDK, SPDK), and Nginx —
// as documented per-operation cost models over the shared cycle
// accounting. The Atmosphere sides of every figure are measured from
// the simulated system; the baselines are cost models because their
// internals are outside the paper's (and this reproduction's) scope,
// calibrated so the headline numbers the paper quotes for them hold:
// Linux 0.89 Mpps (64B UDP), fio 13K/141K read IOPS (b1/b32), Linux
// Maglev 1.0 Mpps, DPDK Maglev 9.72 Mpps, Nginx 70.9K req/s (§6.5-6.6).
package baselines

import (
	"atmosphere/internal/hw"
	"atmosphere/internal/nic"
	"atmosphere/internal/nvme"
)

// Per-packet / per-IO cost constants (cycles). Each is the end-to-end
// CPU cost on the paper's c220g5 testbed implied by the rates the paper
// reports.
const (
	// LinuxUDPPacketCycles: one syscall crossing plus the generic
	// socket/netfilter/qdisc stack per 64-byte packet (0.89 Mpps).
	LinuxUDPPacketCycles = 2472
	// LinuxMaglevPacketCycles: the socket Maglev's per-packet cost
	// (1.0 Mpps): recv + forwarding decision + send.
	LinuxMaglevPacketCycles = 2200
	// DPDKPacketCycles: DPDK PMD per-packet RX cost at batch 32
	// (descriptor + prefetch + mbuf bookkeeping).
	DPDKPacketCycles = 95
	// DPDKMaglevWorkCycles: the DPDK Maglev application work per packet
	// on top of the PMD (9.72 Mpps total).
	DPDKMaglevWorkCycles = 112
	// DPDKPerBatchCycles: tail bump + queue check per burst.
	DPDKPerBatchCycles = 290
	// LinuxBlockReadCycles / LinuxBlockWriteCycles: per-IO CPU cost of
	// the io_submit + blk-mq + interrupt path (141K read IOPS at b32;
	// writes are leaner, landing within 3% of the device's 256K).
	LinuxBlockReadCycles  = 15_600
	LinuxBlockWriteCycles = 8_870
	// SPDKIOCycles: SPDK's polled per-IO cost.
	SPDKIOCycles = 420
	// NginxRequestCycles: per-request cost of epoll + socket reads +
	// parsing + writev on the paper's single-worker setup (70.9K req/s).
	NginxRequestCycles = 31_030
)

// mpps converts a per-packet cycle cost into Mpps, capped at line rate.
func mpps(cyclesPerPkt float64) float64 {
	pps := hw.ClockHz / cyclesPerPkt
	if pps > nic.LineRatePps {
		pps = nic.LineRatePps
	}
	return pps / 1e6
}

// LinuxUDPMpps is the Linux socket packet rate (batch-insensitive: every
// packet crosses the syscall boundary, §6.5.1).
func LinuxUDPMpps(batch int) float64 {
	return mpps(LinuxUDPPacketCycles)
}

// DPDKMpps is the DPDK RX rate for the given batch and per-packet
// application work.
func DPDKMpps(batch int, appWork float64) float64 {
	per := DPDKPacketCycles + appWork + DPDKPerBatchCycles/float64(batch)
	return mpps(per)
}

// LinuxMaglevMpps is the socket Maglev rate (§6.6).
func LinuxMaglevMpps() float64 { return mpps(LinuxMaglevPacketCycles) }

// DPDKMaglevMpps is the PCIe-passthrough DPDK Maglev rate (§6.6).
func DPDKMaglevMpps() float64 { return DPDKMpps(32, DPDKMaglevWorkCycles) }

// storageIOPS folds a CPU cost with the device envelope.
func storageIOPS(cyclesPerIO float64, batch int, read bool) float64 {
	coreRate := hw.ClockHz / cyclesPerIO
	var latency, devMax float64
	if read {
		latency, devMax = nvme.ReadLatencyCycles, nvme.ReadMaxIOPS
	} else {
		latency, devMax = nvme.WriteLatencyCycles, nvme.WriteMaxIOPS
	}
	latencyBound := float64(batch) * hw.ClockHz / latency
	iops := coreRate
	if latencyBound < iops {
		iops = latencyBound
	}
	if devMax < iops {
		iops = devMax
	}
	return iops
}

// LinuxFioIOPS is fio over libaio with direct I/O (§6.5.2).
func LinuxFioIOPS(read bool, batch int) float64 {
	if read {
		return storageIOPS(LinuxBlockReadCycles, batch, true)
	}
	return storageIOPS(LinuxBlockWriteCycles, batch, false)
}

// SPDKIOPS is the SPDK polled driver (§6.5.2).
func SPDKIOPS(read bool, batch int) float64 {
	return storageIOPS(SPDKIOCycles, batch, read)
}

// NginxRps is Nginx serving the static page under the wrk load (§6.6).
func NginxRps() float64 {
	return hw.ClockHz / NginxRequestCycles
}
