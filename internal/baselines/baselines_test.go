package baselines

import (
	"testing"

	"atmosphere/internal/nic"
	"atmosphere/internal/nvme"
)

func within(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if got < want*(1-tol) || got > want*(1+tol) {
		t.Fatalf("%s = %v, want %v ±%.0f%%", what, got, want, tol*100)
	}
}

func TestLinuxUDPHeadline(t *testing.T) {
	within(t, LinuxUDPMpps(1), 0.89, 0.02, "linux udp mpps")
	// Batch-insensitive: per-packet syscalls.
	if LinuxUDPMpps(32) != LinuxUDPMpps(1) {
		t.Fatal("linux rate should not improve with batching")
	}
}

func TestDPDKHeadlines(t *testing.T) {
	// b32 with light app work saturates line rate.
	if got := DPDKMpps(32, 46); got != nic.LineRatePps/1e6 {
		t.Fatalf("dpdk b32 = %v, want line rate", got)
	}
	// b1 pays the per-burst overhead per packet.
	if DPDKMpps(1, 46) >= DPDKMpps(32, 46) {
		t.Fatal("dpdk batching should help")
	}
	within(t, DPDKMaglevMpps(), 9.72, 0.10, "dpdk maglev")
	within(t, LinuxMaglevMpps(), 1.0, 0.02, "linux maglev")
}

func TestStorageHeadlines(t *testing.T) {
	within(t, LinuxFioIOPS(true, 1), 13_000, 0.05, "fio read b1")
	within(t, LinuxFioIOPS(true, 32), 141_000, 0.02, "fio read b32")
	within(t, LinuxFioIOPS(false, 32), 248_000, 0.02, "fio write b32")
	// SPDK reaches the device envelope for reads at depth 32 and the
	// write ceiling.
	if got := SPDKIOPS(true, 32); got > nvme.ReadMaxIOPS {
		t.Fatalf("spdk read above device max: %v", got)
	}
	if got := SPDKIOPS(false, 32); got != nvme.WriteMaxIOPS {
		t.Fatalf("spdk write = %v, want device max", got)
	}
	// QD1 is latency bound for everyone.
	if SPDKIOPS(true, 1) > LinuxFioIOPS(true, 1)*1.05 {
		t.Fatal("QD1 reads should be latency bound regardless of stack")
	}
}

func TestNginxHeadline(t *testing.T) {
	within(t, NginxRps(), 70_900, 0.02, "nginx rps")
}

func TestRatesAreOrdered(t *testing.T) {
	// The Figure 4 ordering the paper reports: linux << dpdk-b32.
	if LinuxUDPMpps(1) >= DPDKMpps(32, 46) {
		t.Fatal("linux should be far below dpdk")
	}
	// Figure 6 ordering: linux maglev << dpdk maglev.
	if LinuxMaglevMpps() >= DPDKMaglevMpps() {
		t.Fatal("linux maglev should be far below dpdk maglev")
	}
}
