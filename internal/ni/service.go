package ni

import (
	"encoding/binary"
	"fmt"

	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/pm"
)

// Service is V, the verified shared service of §4.3: a single container
// with one process running one thread, implemented as an event-driven
// state machine. It alternates waiting on its two client endpoints;
// when a request arrives — scalars plus optionally a shared page and/or
// an endpoint capability — it computes a response (for pages: response
// word = request word + 1, written back into the shared page), replies,
// and then releases everything it received.
//
// Its two functional-correctness properties (§3) are checked after every
// step by CheckCorrectness:
//
//  1. no leak between clients: V never forwards a capability, and no
//     page is ever reachable from both A's and B's subtrees;
//  2. full release: between transactions V's address space and
//     descriptor table equal its baseline, even when the client died
//     mid-transaction.
type Service struct {
	s *Scenario

	// recvVA is where incoming pages land in V's address space.
	recvVA hw.VirtAddr

	// nextSlot alternates which endpoint V waits on.
	nextSlot int
	// waitingOn is the slot V last posted a receive on (-1: none).
	waitingOn int

	// baselineEndpoints is V's descriptor table at service start.
	baselineEndpoints [pm.MaxEndpoints]pm.Ptr
	// baselineMappings is the size of V's address space at start.
	baselineMappings int

	// Handled counts completed transactions.
	Handled int
	// Released counts released pages (munmaps of client pages).
	Released int
}

// NewService initializes V's event loop state.
func NewService(s *Scenario) *Service {
	v := &Service{s: s, recvVA: 0x7f0000000, waitingOn: -1}
	v.baselineEndpoints = s.K.PM.Thrd(s.TV).Endpoints
	v.baselineMappings = len(s.K.PM.Proc(s.PV).PageTable.AddressSpace())
	return v
}

const vCore = 3

// Step advances V's state machine by one action: post a receive, or
// handle a delivered message (respond, reply, release). It is safe to
// call whenever; a blocked V simply keeps waiting.
func (v *Service) Step() error {
	k := v.s.K
	t := k.PM.Thrd(v.s.TV)
	switch {
	case t.State == pm.ThreadBlockedRecv:
		// Still waiting for a client.
		return nil
	case v.waitingOn >= 0:
		// A message was delivered (either inline or by wake).
		slot := v.waitingOn
		v.waitingOn = -1
		if t.IPC.Err != nil {
			// The endpoint died with its container; nothing was
			// transferred. Back to waiting.
			t.IPC.Err = nil
			return nil
		}
		return v.handle(slot)
	default:
		// Idle: post a receive on the next endpoint, alternating.
		slot := v.nextSlot
		v.nextSlot = 1 - v.nextSlot
		if t.Endpoints[slot] == pm.NoEndpoint {
			return nil // channel revoked (client died); keep serving the other
		}
		r := k.SysRecv(vCore, v.s.TV, slot, kernel.RecvArgs{PageVA: v.recvVA, EdptSlot: -1})
		switch r.Errno {
		case kernel.EWOULDBLOCK, kernel.OK:
			v.waitingOn = slot
		case kernel.EINVAL, kernel.EDEADOBJ:
			// Channel gone.
		default:
			return fmt.Errorf("service recv: %v", r.Errno)
		}
		return nil
	}
}

// handle processes the message in V's IPC state for the given slot.
func (v *Service) handle(slot int) error {
	k := v.s.K
	t := k.PM.Thrd(v.s.TV)
	msg := t.IPC.Msg
	proc := k.PM.Proc(v.s.PV)

	reply := kernel.SendArgs{Regs: [4]uint64{msg.Regs[0] + 1, uint64(v.Handled)}}
	if msg.HasPage {
		// Read the request word from the shared page, write the
		// response next to it (the client observes it via its own
		// mapping — the shared-memory fast path of §3).
		if req, okL := k.Machine.MMU.Load(proc.PageTable.CR3(), v.recvVA, 8); okL {
			var out [8]byte
			binary.LittleEndian.PutUint64(out[:], binary.LittleEndian.Uint64(req)+1)
			if msg.PagePerm.Write {
				k.Machine.MMU.Store(proc.PageTable.CR3(), v.recvVA+8, out[:])
			}
			reply.Regs[2] = binary.LittleEndian.Uint64(req)
		}
	}
	// Reply to the caller if one awaits (a crashed client simply has no
	// reply queued; EWOULDBLOCK is fine).
	if t.Endpoints[slot] != pm.NoEndpoint {
		r := k.SysReply(vCore, v.s.TV, slot, reply)
		if r.Errno != kernel.OK && r.Errno != kernel.EWOULDBLOCK {
			return fmt.Errorf("service reply: %v", r.Errno)
		}
	}
	// Release everything received — page first, then any endpoint
	// capability (V never retains or forwards client resources).
	if msg.HasPage {
		if r := k.SysMunmap(vCore, v.s.TV, v.recvVA, 1, msg.PageSize); r.Errno != kernel.OK {
			return fmt.Errorf("service release page: %v", r.Errno)
		}
		v.Released++
	}
	for i, e := range t.Endpoints {
		if e != pm.NoEndpoint && e != v.baselineEndpoints[i] {
			if r := k.SysCloseEndpoint(vCore, v.s.TV, i); r.Errno != kernel.OK {
				return fmt.Errorf("service release endpoint: %v", r.Errno)
			}
		}
	}
	v.Handled++
	return nil
}

// CheckCorrectness validates V's functional-correctness invariants.
// While a transaction is in flight V may hold exactly one extra page;
// between transactions it must be exactly at its baseline.
func (v *Service) CheckCorrectness() error {
	k := v.s.K
	t := k.PM.Thrd(v.s.TV)
	space := k.PM.Proc(v.s.PV).PageTable.AddressSpace()
	extra := len(space) - v.baselineMappings
	inFlight := v.waitingOn >= 0 &&
		t.State != pm.ThreadBlockedRecv // woken with an unprocessed message
	if inFlight {
		if extra > 1 {
			return fmt.Errorf("service: %d extra mappings mid-transaction", extra)
		}
	} else if t.State == pm.ThreadBlockedRecv || v.waitingOn < 0 {
		if extra != 0 {
			return fmt.Errorf("service: %d retained client pages between transactions", extra)
		}
		for i, e := range t.Endpoints {
			if e != v.baselineEndpoints[i] && e != pm.NoEndpoint {
				return fmt.Errorf("service: retained client endpoint in slot %d", i)
			}
		}
	}
	// V never bridges its clients: no physical page reachable from both
	// A's and B's subtrees (this is memory_iso, rechecked from V's
	// perspective).
	return MemoryIso(k, v.s.A, v.s.B)
}
