package ni

import (
	"fmt"

	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
)

// The §4.3 discussion argues the A/B/V proof generalizes: "in the case
// when any number of isolated containers do not communicate, the proof
// is a strict subset of the proof presented here." MultiScenario is that
// configuration, executably: N mutually isolated containers with no
// shared service, checked pairwise for isolation and step consistency.

// MultiScenario is an N-domain isolation configuration.
type MultiScenario struct {
	K    *kernel.Kernel
	Init pm.Ptr

	Domains []pm.Ptr // containers
	Procs   []pm.Ptr
	Threads []pm.Ptr
	Cores   []int
}

// BuildMulti boots a kernel with n isolated containers, one process and
// thread each, and — crucially — one *exclusive* core per domain (core 0
// stays with the root's setup thread). Exclusivity is not optional: the
// checker itself demonstrates that two isolated domains time-sharing a
// core observe each other through scheduler state (running vs runnable),
// the classic CPU covert channel separation kernels close by
// partitioning cores.
func BuildMulti(n int, quota uint64) (*MultiScenario, error) {
	if n < 2 {
		return nil, fmt.Errorf("ni: need at least two domains")
	}
	k, init, err := kernel.Boot(hw.Config{Frames: 16384, Cores: n + 1, TLBSlots: 256})
	if err != nil {
		return nil, err
	}
	m := &MultiScenario{K: k, Init: init}
	for i := 0; i < n; i++ {
		core := 1 + i
		r := k.SysNewContainer(0, init, quota, []int{core})
		if r.Errno != kernel.OK {
			return nil, fmt.Errorf("ni: domain %d container: %v", i, r.Errno)
		}
		cntr := pm.Ptr(r.Vals[0])
		rp := k.SysNewProcessIn(0, init, cntr)
		if rp.Errno != kernel.OK {
			return nil, fmt.Errorf("ni: domain %d proc: %v", i, rp.Errno)
		}
		rt := k.SysNewThreadIn(0, init, pm.Ptr(rp.Vals[0]), core)
		if rt.Errno != kernel.OK {
			return nil, fmt.Errorf("ni: domain %d thread: %v", i, rt.Errno)
		}
		m.Domains = append(m.Domains, cntr)
		m.Procs = append(m.Procs, pm.Ptr(rp.Vals[0]))
		m.Threads = append(m.Threads, pm.Ptr(rt.Vals[0]))
		m.Cores = append(m.Cores, core)
	}
	return m, nil
}

// CheckPairwiseIsolation validates memory_iso and endpoint_iso for every
// domain pair.
func (m *MultiScenario) CheckPairwiseIsolation() error {
	for i := 0; i < len(m.Domains); i++ {
		for j := i + 1; j < len(m.Domains); j++ {
			if err := MemoryIso(m.K, m.Domains[i], m.Domains[j]); err != nil {
				return fmt.Errorf("domains %d/%d: %w", i, j, err)
			}
			if err := EndpointIso(m.K, m.Domains[i], m.Domains[j]); err != nil {
				return fmt.Errorf("domains %d/%d: %w", i, j, err)
			}
		}
	}
	return nil
}

// FuzzSC drives random syscalls from random domains for the given number
// of steps; after each step by domain d, every *other* domain's
// observable view must be bit-identical. Returns the collected
// violations (nil on a correct kernel) and the step count executed.
func (m *MultiScenario) FuzzSC(seed uint64, steps int) ([]string, int, error) {
	r := hw.NewRand(seed)
	k := m.K
	var violations []string
	vaNext := make([]uint64, len(m.Domains))
	mapped := make([][]hw.VirtAddr, len(m.Domains))
	children := make([][]pm.Ptr, len(m.Domains))
	for i := range vaNext {
		vaNext[i] = 0x10000000 * uint64(i+1)
	}
	executed := 0
	for s := 0; s < steps; s++ {
		d := r.Intn(len(m.Domains))
		tid := m.Threads[d]
		th, alive := k.PM.TryThrd(tid)
		if !alive || (th.State != pm.ThreadRunnable && th.State != pm.ThreadRunning) {
			continue
		}
		// Observe every other domain before the step.
		before := make([]string, len(m.Domains))
		for o := range m.Domains {
			if o != d {
				before[o] = Observe(k, m.Domains[o])
			}
		}
		op := m.randomOp(r, d, tid, vaNext, mapped, children)
		executed++
		for o := range m.Domains {
			if o == d {
				continue
			}
			if after := Observe(k, m.Domains[o]); after != before[o] {
				_, diff := ViewEqual(before[o], after)
				violations = append(violations, fmt.Sprintf(
					"step %d: domain %d's %s changed domain %d: %s", s, d, op, o, diff))
			}
		}
		if err := m.CheckPairwiseIsolation(); err != nil {
			return violations, executed, err
		}
	}
	return violations, executed, nil
}

// randomOp issues one arbitrary syscall from domain d.
func (m *MultiScenario) randomOp(r *hw.Rand, d int, tid pm.Ptr,
	vaNext []uint64, mapped [][]hw.VirtAddr, children [][]pm.Ptr) string {
	k := m.K
	core := m.Cores[d]
	switch r.Intn(8) {
	case 0:
		va := hw.VirtAddr(vaNext[d])
		vaNext[d] += 2 * hw.PageSize4K
		if ret := k.SysMmap(core, tid, va, 1, hw.Size4K, pt.RW); ret.Errno == kernel.OK {
			mapped[d] = append(mapped[d], va)
		}
		return "mmap"
	case 1:
		if len(mapped[d]) > 0 {
			i := r.Intn(len(mapped[d]))
			if ret := k.SysMunmap(core, tid, mapped[d][i], 1, hw.Size4K); ret.Errno == kernel.OK {
				mapped[d] = append(mapped[d][:i], mapped[d][i+1:]...)
			}
		}
		return "munmap"
	case 2:
		if len(mapped[d]) > 0 {
			va := mapped[d][r.Intn(len(mapped[d]))]
			proc := k.PM.Proc(k.PM.Thrd(tid).OwningProc)
			var buf [32]byte
			r.Bytes(buf[:])
			k.Machine.MMU.Store(proc.PageTable.CR3(), va, buf[:])
		}
		return "store"
	case 3:
		if ret := k.SysNewContainer(core, tid, uint64(4+r.Intn(10)), []int{core}); ret.Errno == kernel.OK {
			children[d] = append(children[d], pm.Ptr(ret.Vals[0]))
		}
		return "new_container"
	case 4:
		if len(children[d]) > 0 {
			i := r.Intn(len(children[d]))
			if ret := k.SysKillContainer(core, tid, children[d][i]); ret.Errno == kernel.OK {
				children[d] = append(children[d][:i], children[d][i+1:]...)
			}
		}
		return "kill_container"
	case 5:
		k.SysNewEndpoint(core, tid, r.Intn(pm.MaxEndpoints))
		return "new_endpoint"
	case 6:
		// Hostile: try to map into another domain's address range, kill
		// another domain, etc. — all must be denied.
		other := m.Domains[(d+1)%len(m.Domains)]
		k.SysKillContainer(core, tid, other)
		return "kill(peer)"
	default:
		k.SysYield(core, tid)
		return "yield"
	}
}
