// Package ni implements the paper's isolation and non-interference
// argument (§4.3) as an executable checker.
//
// The system configuration is the paper's running example: two
// untrusted, isolated containers A and B, and a verified shared service
// container V. A and B may each talk to V over a dedicated endpoint but
// have no channel to each other. The checker drives arbitrary system
// calls with arbitrary arguments from A's and B's threads and validates:
//
//   - memory_iso and endpoint_iso (the §4.3 invariants) after every step;
//   - step consistency (SC): a step by A leaves B's observable state
//     bit-identical, and vice versa;
//   - output consistency (OC): the kernel is a deterministic function of
//     its pre-state — replaying a trace reproduces every return value
//     and every observable state;
//   - local respect (LR): subsumed by SC in this configuration, as in
//     the paper.
//
// V's functional correctness — it never leaks memory between A and B and
// always releases pages it receives, even when a client dies — is
// checked by the Service type's own invariants (service.go).
package ni

import (
	"fmt"

	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/pm"
)

// Scenario is the instantiated A/B/V configuration.
type Scenario struct {
	K    *kernel.Kernel
	Init pm.Ptr // root container's setup thread

	A, B, V    pm.Ptr // containers
	PA, PB, PV pm.Ptr // initial processes
	TA, TB, TV pm.Ptr // initial threads

	// EpAV and EpBV are the two service endpoints: V <-> A and V <-> B.
	EpAV, EpBV pm.Ptr

	// Slot assignments (same on both sides).
	SlotAV, SlotBV int
}

// Config sizes the scenario.
type Config struct {
	Frames     int
	QuotaA     uint64
	QuotaB     uint64
	QuotaV     uint64
	HWConfig   hw.Config
	UseDefault bool
}

// DefaultConfig returns the standard scenario sizing.
func DefaultConfig() Config {
	return Config{
		HWConfig: hw.Config{Frames: 8192, Cores: 4, TLBSlots: 256},
		QuotaA:   512, QuotaB: 512, QuotaV: 512,
	}
}

// Build boots a kernel and assembles the A/B/V configuration. The
// trusted parent (the root container's init thread) creates the three
// containers, one process and thread each, and installs the two service
// endpoints — the boot-time channel setup the paper's configuration
// assumes. A gets core 1, B core 2, V core 3 (complete CPU separation).
func Build(cfg Config) (*Scenario, error) {
	k, init, err := kernel.Boot(cfg.HWConfig)
	if err != nil {
		return nil, err
	}
	s := &Scenario{K: k, Init: init, SlotAV: 0, SlotBV: 1}

	mk := func(quota uint64, core int) (cntr, proc, thrd pm.Ptr, err error) {
		r := k.SysNewContainer(0, init, quota, []int{core})
		if r.Errno != kernel.OK {
			return 0, 0, 0, fmt.Errorf("new_container: %v", r.Errno)
		}
		cntr = pm.Ptr(r.Vals[0])
		r = k.SysNewProcessIn(0, init, cntr)
		if r.Errno != kernel.OK {
			return 0, 0, 0, fmt.Errorf("new_proc_in: %v", r.Errno)
		}
		proc = pm.Ptr(r.Vals[0])
		r = k.SysNewThreadIn(0, init, proc, core)
		if r.Errno != kernel.OK {
			return 0, 0, 0, fmt.Errorf("new_thread_in: %v", r.Errno)
		}
		thrd = pm.Ptr(r.Vals[0])
		return cntr, proc, thrd, nil
	}
	if s.A, s.PA, s.TA, err = mk(cfg.QuotaA, 1); err != nil {
		return nil, err
	}
	if s.B, s.PB, s.TB, err = mk(cfg.QuotaB, 2); err != nil {
		return nil, err
	}
	if s.V, s.PV, s.TV, err = mk(cfg.QuotaV, 3); err != nil {
		return nil, err
	}

	// V creates the two service endpoints; the trusted parent installs
	// the matching descriptors into A and B (boot-time channel setup).
	r := k.SysNewEndpoint(3, s.TV, s.SlotAV)
	if r.Errno != kernel.OK {
		return nil, fmt.Errorf("endpoint AV: %v", r.Errno)
	}
	s.EpAV = pm.Ptr(r.Vals[0])
	r = k.SysNewEndpoint(3, s.TV, s.SlotBV)
	if r.Errno != kernel.OK {
		return nil, fmt.Errorf("endpoint BV: %v", r.Errno)
	}
	s.EpBV = pm.Ptr(r.Vals[0])
	k.PM.Thrd(s.TA).Endpoints[s.SlotAV] = s.EpAV
	k.PM.EndpointIncRef(s.EpAV, 1)
	k.PM.Thrd(s.TB).Endpoints[s.SlotBV] = s.EpBV
	k.PM.EndpointIncRef(s.EpBV, 1)
	return s, nil
}

// DomainOf reports which top-level domain a thread belongs to ("A", "B",
// "V", or "root").
func (s *Scenario) DomainOf(tid pm.Ptr) string {
	t, ok := s.K.PM.TryThrd(tid)
	if !ok {
		return "?"
	}
	switch {
	case t.OwningCntr == s.A || s.K.PM.IsAncestor(s.A, t.OwningCntr):
		return "A"
	case t.OwningCntr == s.B || s.K.PM.IsAncestor(s.B, t.OwningCntr):
		return "B"
	case t.OwningCntr == s.V || s.K.PM.IsAncestor(s.V, t.OwningCntr):
		return "V"
	}
	return "root"
}
