package ni

import (
	"strings"
	"testing"

	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
	"atmosphere/internal/verify"
)

func build(t *testing.T) *Scenario {
	t.Helper()
	s, err := Build(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestScenarioShape(t *testing.T) {
	s := build(t)
	if err := verify.TotalWF(s.K); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckIsolation(); err != nil {
		t.Fatal(err)
	}
	if s.DomainOf(s.TA) != "A" || s.DomainOf(s.TB) != "B" || s.DomainOf(s.TV) != "V" {
		t.Fatal("domain attribution wrong")
	}
	// A and B share no endpoint; both share one with V.
	ta, tb, tv := s.K.PM.Thrd(s.TA), s.K.PM.Thrd(s.TB), s.K.PM.Thrd(s.TV)
	if ta.Endpoints[s.SlotAV] != tv.Endpoints[s.SlotAV] {
		t.Fatal("A-V endpoint not shared")
	}
	if tb.Endpoints[s.SlotBV] != tv.Endpoints[s.SlotBV] {
		t.Fatal("B-V endpoint not shared")
	}
}

func TestMemoryIsoDetectsSharing(t *testing.T) {
	s := build(t)
	// Map a page in A, then forcibly map the same frame into B's table
	// (bypassing the kernel): memory_iso must fire.
	r := s.K.SysMmap(1, s.TA, 0x10000, 1, hw.Size4K, pt.RW)
	if r.Errno != kernel.OK {
		t.Fatal(r.Errno)
	}
	e, _ := s.K.PM.Proc(s.PA).PageTable.Lookup(0x10000)
	if err := MemoryIso(s.K, s.A, s.B); err != nil {
		t.Fatal(err)
	}
	if err := s.K.PM.Proc(s.PB).PageTable.Map4K(0x10000, e.Phys, pt.RW); err != nil {
		t.Fatal(err)
	}
	if err := MemoryIso(s.K, s.A, s.B); err == nil {
		t.Fatal("forced shared frame not detected")
	}
}

func TestEndpointIsoDetectsSharing(t *testing.T) {
	s := build(t)
	if err := EndpointIso(s.K, s.A, s.B); err != nil {
		t.Fatal(err)
	}
	// Forcibly install A's service endpoint into B.
	s.K.PM.Thrd(s.TB).Endpoints[7] = s.EpAV
	s.K.PM.EndpointIncRef(s.EpAV, 1)
	if err := EndpointIso(s.K, s.A, s.B); err == nil {
		t.Fatal("forced shared endpoint not detected")
	}
}

func TestServiceRoundTrip(t *testing.T) {
	s := build(t)
	v := NewService(s)
	// V posts a receive on A's channel.
	if err := v.Step(); err != nil {
		t.Fatal(err)
	}
	// A maps a page, writes a request, calls V.
	if r := s.K.SysMmap(1, s.TA, 0x40000, 1, hw.Size4K, pt.RW); r.Errno != kernel.OK {
		t.Fatal(r.Errno)
	}
	procA := s.K.PM.Proc(s.PA)
	s.K.Machine.MMU.Store(procA.PageTable.CR3(), 0x40000, []byte{41, 0, 0, 0, 0, 0, 0, 0})
	if r := s.K.SysCall(1, s.TA, s.SlotAV, kernel.SendArgs{
		Regs: [4]uint64{7}, SendPage: true, PageVA: 0x40000}); r.Errno != kernel.EWOULDBLOCK {
		t.Fatalf("call: %v", r.Errno)
	}
	// V handles: respond in page, reply, release.
	if err := v.Step(); err != nil {
		t.Fatal(err)
	}
	if v.Handled != 1 || v.Released != 1 {
		t.Fatalf("handled=%d released=%d", v.Handled, v.Released)
	}
	// A got the reply and sees the response in its shared page.
	ta := s.K.PM.Thrd(s.TA)
	if ta.IPC.Msg.Regs[0] != 8 {
		t.Fatalf("reply regs = %v", ta.IPC.Msg.Regs)
	}
	resp, ok := s.K.Machine.MMU.Load(procA.PageTable.CR3(), 0x40008, 8)
	if !ok || resp[0] != 42 {
		t.Fatalf("response in shared page = %v ok=%v", resp, ok)
	}
	if err := v.CheckCorrectness(); err != nil {
		t.Fatal(err)
	}
	if err := verify.TotalWF(s.K); err != nil {
		t.Fatal(err)
	}
}

func TestServiceReleasesOnClientDeath(t *testing.T) {
	s := build(t)
	v := NewService(s)
	if err := v.Step(); err != nil { // V waits on A
		t.Fatal(err)
	}
	if r := s.K.SysMmap(1, s.TA, 0x40000, 1, hw.Size4K, pt.RW); r.Errno != kernel.OK {
		t.Fatal(r.Errno)
	}
	if r := s.K.SysCall(1, s.TA, s.SlotAV, kernel.SendArgs{
		SendPage: true, PageVA: 0x40000}); r.Errno != kernel.EWOULDBLOCK {
		t.Fatalf("call: %v", r.Errno)
	}
	// A dies before V handles the request.
	if r := s.K.SysKillContainer(0, s.Init, s.A); r.Errno != kernel.OK {
		t.Fatalf("kill: %v", r.Errno)
	}
	// V still handles and releases the page (its mapping holds the last
	// reference), then returns to baseline.
	if err := v.Step(); err != nil {
		t.Fatal(err)
	}
	if v.Released != 1 {
		t.Fatalf("released = %d", v.Released)
	}
	if err := v.CheckCorrectness(); err != nil {
		t.Fatal(err)
	}
	if err := verify.TotalWF(s.K); err != nil {
		t.Fatal(err)
	}
}

func TestPeerKillDenied(t *testing.T) {
	s := build(t)
	if r := s.K.SysKillContainer(1, s.TA, s.B); r.Errno != kernel.EPERM {
		t.Fatalf("A killing B: %v", r.Errno)
	}
	if r := s.K.SysKillContainer(2, s.TB, s.A); r.Errno != kernel.EPERM {
		t.Fatalf("B killing A: %v", r.Errno)
	}
}

func TestStepConsistencyFuzz(t *testing.T) {
	f, err := NewFuzzer(4242)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Run(500); err != nil {
		t.Fatal(err)
	}
	if len(f.SCViolations) > 0 {
		t.Fatalf("step consistency violated:\n%s", strings.Join(f.SCViolations, "\n"))
	}
	if err := verify.TotalWF(f.S.K); err != nil {
		t.Fatal(err)
	}
	// The trace must contain real activity from both domains.
	acted := map[string]int{}
	for _, rec := range f.Trace {
		acted[rec.Domain]++
	}
	if acted["A"] < 50 || acted["B"] < 50 {
		t.Fatalf("fuzz activity too low: %v", acted)
	}
}

func TestOutputConsistency(t *testing.T) {
	t1, err := ReplayTrace(777, 300)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := ReplayTrace(777, 300)
	if err != nil {
		t.Fatal(err)
	}
	if eq, diff := TracesEqual(t1, t2); !eq {
		t.Fatalf("output consistency violated: %s", diff)
	}
	// Different seeds diverge (the comparison is not vacuous).
	t3, err := ReplayTrace(778, 300)
	if err != nil {
		t.Fatal(err)
	}
	if eq, _ := TracesEqual(t1, t3); eq {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestObserveDetectsContentChange(t *testing.T) {
	s := build(t)
	if r := s.K.SysMmap(2, s.TB, 0x50000, 1, hw.Size4K, pt.RW); r.Errno != kernel.OK {
		t.Fatal(r.Errno)
	}
	before := Observe(s.K, s.B)
	procB := s.K.PM.Proc(s.PB)
	s.K.Machine.MMU.Store(procB.PageTable.CR3(), 0x50000, []byte{1})
	after := Observe(s.K, s.B)
	if eq, _ := ViewEqual(before, after); eq {
		t.Fatal("page content change invisible to Observe")
	}
}

func TestDomainOfNestedContainers(t *testing.T) {
	s := build(t)
	r := s.K.SysNewContainer(1, s.TA, 10, []int{1})
	if r.Errno != kernel.OK {
		t.Fatal(r.Errno)
	}
	child := pm.Ptr(r.Vals[0])
	rp := s.K.SysNewProcessIn(1, s.TA, child)
	if rp.Errno != kernel.OK {
		t.Fatal(rp.Errno)
	}
	rt := s.K.SysNewThreadIn(1, s.TA, pm.Ptr(rp.Vals[0]), 1)
	if rt.Errno != kernel.OK {
		t.Fatal(rt.Errno)
	}
	if s.DomainOf(pm.Ptr(rt.Vals[0])) != "A" {
		t.Fatal("nested thread not attributed to A")
	}
}

func TestMultiDomainIsolation(t *testing.T) {
	m, err := BuildMulti(5, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckPairwiseIsolation(); err != nil {
		t.Fatal(err)
	}
	violations, executed, err := m.FuzzSC(606, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) > 0 {
		t.Fatalf("step consistency violated across %d domains:\n%s",
			len(m.Domains), violations[0])
	}
	if executed < 300 {
		t.Fatalf("only %d steps executed", executed)
	}
	if err := verify.TotalWF(m.K); err != nil {
		t.Fatal(err)
	}
}

func TestMultiDomainRejectsDegenerate(t *testing.T) {
	if _, err := BuildMulti(1, 64); err == nil {
		t.Fatal("single-domain scenario accepted")
	}
}

func TestMultiDomainDetectsForcedSharing(t *testing.T) {
	m, err := BuildMulti(3, 128)
	if err != nil {
		t.Fatal(err)
	}
	// Forcibly map one frame into two domains: pairwise iso must fire.
	if r := m.K.SysMmap(m.Cores[0], m.Threads[0], 0x10000000, 1, hw.Size4K, pt.RW); r.Errno != kernel.OK {
		t.Fatal(r.Errno)
	}
	e, _ := m.K.PM.Proc(m.Procs[0]).PageTable.Lookup(0x10000000)
	if err := m.K.PM.Proc(m.Procs[2]).PageTable.Map4K(0x10000000, e.Phys, pt.RW); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckPairwiseIsolation(); err == nil {
		t.Fatal("forced cross-domain frame not detected")
	}
}
