package ni

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/pm"
)

// Observable state (§4.3): "the observable state of a container subtree
// C_B includes its memory quotas, address spaces, schedulers, endpoints,
// state of the processes, etc." Observe renders a domain's subtree into
// a canonical string; step consistency is string equality.
//
// Mapped page *contents* are included (as hashes): if a syscall from A
// could change bytes that B can read, SC must fail. Pages shared with V
// are the deliberate communication channel and are attributed to V, so
// they are excluded from A's and B's views exactly when V holds them.

// Observe builds the observable view of the container subtree rooted at
// cntr.
func Observe(k *kernel.Kernel, cntr pm.Ptr) string {
	var b strings.Builder
	cs := make([]pm.Ptr, 0, 8)
	for c := range k.PM.SubtreeOf(cntr) {
		cs = append(cs, c)
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	for _, c := range cs {
		cc := k.PM.Cntr(c)
		fmt.Fprintf(&b, "container %#x parent=%#x depth=%d quota=%d used=%d cpus=%v\n",
			c, cc.Parent, cc.Depth, cc.QuotaPages, cc.UsedPages, cc.CPUs)
		procs := make([]pm.Ptr, 0, len(cc.Procs))
		for p := range cc.Procs {
			procs = append(procs, p)
		}
		sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
		for _, p := range procs {
			proc := k.PM.Proc(p)
			fmt.Fprintf(&b, " proc %#x parent=%#x iommu=%d\n", p, proc.Parent, proc.IOMMUDomain)
			space := proc.PageTable.AddressSpace()
			vas := make([]hw.VirtAddr, 0, len(space))
			for va := range space {
				vas = append(vas, va)
			}
			sort.Slice(vas, func(i, j int) bool { return vas[i] < vas[j] })
			for _, va := range vas {
				e := space[va]
				fmt.Fprintf(&b, "  map %#x -> %#x %v w=%v x=%v content=%x\n",
					va, e.Phys, e.Size, e.Perm.Write, e.Perm.Exec,
					pageHash(k, e.Phys, e.Size))
			}
			for _, th := range proc.Threads {
				t := k.PM.Thrd(th)
				fmt.Fprintf(&b, "  thread %#x state=%v core=%d wait=%#x regs=%v err=%v eps=",
					th, t.State, t.Core, t.IPC.WaitingOn, t.IPC.Msg.Regs, t.IPC.Err != nil)
				for i, e := range t.Endpoints {
					if e != pm.NoEndpoint {
						fmt.Fprintf(&b, "%d:%#x,", i, e)
					}
				}
				b.WriteByte('\n')
			}
		}
	}
	// Endpoints owned by the subtree: queue shapes are observable (a
	// thread can probe whether its send blocks).
	eps := make([]pm.Ptr, 0)
	sub := k.PM.SubtreeOf(cntr)
	for e, ep := range k.PM.EdptPerms {
		if _, owned := sub[ep.OwnerCntr]; owned {
			eps = append(eps, e)
		}
	}
	sort.Slice(eps, func(i, j int) bool { return eps[i] < eps[j] })
	for _, e := range eps {
		ep := k.PM.Edpt(e)
		fmt.Fprintf(&b, "endpoint %#x refs=%d recv=%v queue=%v\n",
			e, ep.RefCount, ep.QueuedRecv, ep.Queue)
	}
	return b.String()
}

// pageHash hashes a mapped page's contents.
func pageHash(k *kernel.Kernel, phys hw.PhysAddr, size hw.PageSize) uint64 {
	h := fnv.New64a()
	n := size.Bytes()
	if n > hw.PageSize4K*4 {
		n = hw.PageSize4K * 4 // hash a superpage prefix; enough to catch writes
	}
	h.Write(k.Machine.Mem.Slice(phys, n))
	return h.Sum64()
}

// ViewEqual compares two observable views and reports the first
// difference.
func ViewEqual(before, after string) (bool, string) {
	if before == after {
		return true, ""
	}
	bl, al := strings.Split(before, "\n"), strings.Split(after, "\n")
	for i := 0; i < len(bl) && i < len(al); i++ {
		if bl[i] != al[i] {
			return false, fmt.Sprintf("line %d:\n  before: %s\n  after:  %s", i, bl[i], al[i])
		}
	}
	return false, fmt.Sprintf("length %d vs %d lines", len(bl), len(al))
}
