package ni

import (
	"fmt"

	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/pm"
)

// The §4.3 isolation invariants, executably. They quantify over the flat
// domain sets P_A/P_B (processes) and T_A/T_B (threads), built directly
// from the subtree ghost state as the paper describes.

// MemoryIso is memory_iso: no physical page is mapped by an address
// space in P_A and also by one in P_B. A terminated domain maps nothing
// and is vacuously isolated.
func MemoryIso(k *kernel.Kernel, a, b pm.Ptr) error {
	if _, okA := k.PM.TryCntr(a); !okA {
		return nil
	}
	if _, okB := k.PM.TryCntr(b); !okB {
		return nil
	}
	pagesA := domainPages(k, a)
	for proc := range k.PM.ProcsOf(b) {
		for va, e := range k.PM.Proc(proc).PageTable.AddressSpace() {
			if _, shared := pagesA[e.Phys]; shared {
				return fmt.Errorf("memory_iso violated: page %#x mapped by both domains (B's %#x at va %#x)",
					e.Phys, proc, va)
			}
		}
	}
	return nil
}

func domainPages(k *kernel.Kernel, cntr pm.Ptr) map[hw.PhysAddr]pm.Ptr {
	out := make(map[hw.PhysAddr]pm.Ptr)
	for proc := range k.PM.ProcsOf(cntr) {
		for _, e := range k.PM.Proc(proc).PageTable.AddressSpace() {
			out[e.Phys] = proc
		}
	}
	return out
}

// EndpointIso is endpoint_iso: no endpoint descriptor is held by a
// thread in T_A and also by one in T_B. A terminated domain holds no
// descriptors and is vacuously isolated.
func EndpointIso(k *kernel.Kernel, a, b pm.Ptr) error {
	if _, okA := k.PM.TryCntr(a); !okA {
		return nil
	}
	if _, okB := k.PM.TryCntr(b); !okB {
		return nil
	}
	held := make(map[pm.Ptr]pm.Ptr) // endpoint -> A-thread holding it
	for th := range k.PM.ThreadsOf(a) {
		for _, e := range k.PM.Thrd(th).Endpoints {
			if e != pm.NoEndpoint {
				held[e] = th
			}
		}
	}
	for th := range k.PM.ThreadsOf(b) {
		for _, e := range k.PM.Thrd(th).Endpoints {
			if e == pm.NoEndpoint {
				continue
			}
			if at, shared := held[e]; shared {
				return fmt.Errorf("endpoint_iso violated: endpoint %#x held by A's %#x and B's %#x",
					e, at, th)
			}
		}
	}
	return nil
}

// CheckIsolation runs both invariants for the scenario's A and B.
func (s *Scenario) CheckIsolation() error {
	if err := MemoryIso(s.K, s.A, s.B); err != nil {
		return err
	}
	return EndpointIso(s.K, s.A, s.B)
}
