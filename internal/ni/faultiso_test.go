package ni

import (
	"testing"

	"atmosphere/internal/faults"
	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/pt"
)

// TestFaultInjectionDoesNotPerturbB: faults injected into domain A's
// execution — allocator exhaustion on A's syscalls, dropped interrupt
// edges — must not change B's observable state. Checked two ways:
// step consistency inside the faulty run (B's view is bit-identical
// across every faulty A step), and cross-run (B's final view in the
// faulty run equals B's final view in a fault-free run of the same
// trace).
func TestFaultInjectionDoesNotPerturbB(t *testing.T) {
	// driveA issues a fixed syscall trace from A's thread: mmaps (some
	// of which fail under injection), munmaps, endpoint create/close.
	driveA := func(s *Scenario, preStep func(), postStep func(step int)) {
		k := s.K
		step := 0
		do := func(f func() kernel.Ret) {
			preStep()
			f()
			postStep(step)
			step++
		}
		base := hw.VirtAddr(0x700000000)
		for i := 0; i < 24; i++ {
			va := base + hw.VirtAddr(i*hw.PageSize4K)
			do(func() kernel.Ret { return k.SysMmap(1, s.TA, va, 1, hw.Size4K, pt.RW) })
			if i%3 == 0 {
				do(func() kernel.Ret { return k.SysMunmap(1, s.TA, va, 1, hw.Size4K) })
			}
			if i%5 == 0 {
				do(func() kernel.Ret { return k.SysNewEndpoint(1, s.TA, 3) })
				do(func() kernel.Ret { return k.SysCloseEndpoint(1, s.TA, 3) })
			}
		}
	}

	// Fault-free reference run.
	ref, err := Build(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	driveA(ref, func() {}, func(int) {})
	refB := Observe(ref.K, ref.B)

	// Faulty run: allocator exhaustion armed only while A executes,
	// plus an IRQ filter that deterministically drops edges (nothing
	// binds IRQs here, so it guards the dispatch path stays inert).
	s, err := Build(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.NewInjector(2024, faults.Plan{Rules: []faults.Rule{
		{Kind: faults.AllocExhaust, Rate: 0.4},
		{Kind: faults.IRQDrop, Rate: 0.5},
	}}, s.K.Machine.TotalCycles)
	if err != nil {
		t.Fatal(err)
	}
	s.K.IRQFilter = func(core, irq int) bool { return !inj.Hit(faults.IRQDrop) }

	before := Observe(s.K, s.B)
	driveA(s,
		func() { s.K.Alloc.SetFaultHook(func() bool { return inj.Hit(faults.AllocExhaust) }) },
		func(step int) {
			s.K.Alloc.SetFaultHook(nil)
			after := Observe(s.K, s.B)
			if eq, diff := ViewEqual(before, after); !eq {
				t.Fatalf("faulty A step %d perturbed B: %s", step, diff)
			}
		})
	if inj.Injected[faults.AllocExhaust] == 0 {
		t.Fatal("no allocator faults fired; test is vacuous")
	}

	// Cross-run: B's view is identical whether or not A was faulted.
	if eq, diff := ViewEqual(refB, Observe(s.K, s.B)); !eq {
		t.Fatalf("fault injection in A changed B across runs: %s", diff)
	}
}
