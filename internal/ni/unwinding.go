package ni

import (
	"fmt"
	"hash/fnv"
	"sort"

	"atmosphere/internal/hw"
	"atmosphere/internal/kernel"
	"atmosphere/internal/pm"
	"atmosphere/internal/pt"
)

// The unwinding-condition checker (§4.3). A Fuzzer drives arbitrary
// system calls with arbitrary arguments from A's and B's threads
// (interleaved with V's event loop) and validates:
//
//   SC  — after every step by one isolated domain, the other domain's
//         observable state is bit-identical;
//   iso — memory_iso and endpoint_iso hold after every step;
//   OC  — replaying a seed reproduces every return value and every
//         observable state hash (the kernel is a function of its
//         pre-state; see TestOutputConsistency);
//   LR  — in this configuration local respect is subsumed by SC, as in
//         the paper.

// StepRecord is one fuzzed transition's observable outcome.
type StepRecord struct {
	Domain string
	Op     string
	Errno  kernel.Errno
	Val    uint64
	ObsA   uint64
	ObsB   uint64
}

// Fuzzer drives the scenario.
type Fuzzer struct {
	S *Scenario
	V *Service
	R *hw.Rand

	// Trace records every step for output-consistency comparison.
	Trace []StepRecord

	// SCViolations collects step-consistency failures (empty on a
	// correct kernel).
	SCViolations []string

	// vaNext allocates fresh mapping addresses per domain.
	vaNext map[string]uint64
	// mapped tracks live user mappings per domain for munmap/send.
	mapped map[string][]hw.VirtAddr
	// children tracks killable child containers per domain.
	children map[string][]pm.Ptr
}

// NewFuzzer builds a scenario and fuzzer from a seed.
func NewFuzzer(seed uint64) (*Fuzzer, error) {
	s, err := Build(DefaultConfig())
	if err != nil {
		return nil, err
	}
	return &Fuzzer{
		S: s, V: NewService(s), R: hw.NewRand(seed),
		vaNext:   map[string]uint64{"A": 0x10000000, "B": 0x20000000},
		mapped:   map[string][]hw.VirtAddr{},
		children: map[string][]pm.Ptr{},
	}, nil
}

// runnableThreads returns the domain's threads able to issue syscalls,
// sorted for determinism.
func (f *Fuzzer) runnableThreads(cntr pm.Ptr) []pm.Ptr {
	var out []pm.Ptr
	for th := range f.S.K.PM.ThreadsOf(cntr) {
		t := f.S.K.PM.Thrd(th)
		if t.State == pm.ThreadRunnable || t.State == pm.ThreadRunning {
			out = append(out, th)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func hashView(v string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(v))
	return h.Sum64()
}

// Step performs one fuzzed transition and applies the SC and isolation
// checks. It returns an error only for checker-internal failures;
// property violations are collected in SCViolations.
func (f *Fuzzer) Step() error {
	k := f.S.K
	switch f.R.Intn(5) {
	case 0, 1: // A acts; B must be unaffected.
		if err := f.domainStep("A", f.S.A, 1, f.S.B, "B"); err != nil {
			return err
		}
	case 2, 3: // B acts; A must be unaffected.
		if err := f.domainStep("B", f.S.B, 2, f.S.A, "A"); err != nil {
			return err
		}
	default: // V serves.
		if err := f.V.Step(); err != nil {
			return err
		}
		f.record("V", "service", kernel.OK, 0)
	}
	if err := f.S.CheckIsolation(); err != nil {
		return err
	}
	if err := f.V.CheckCorrectness(); err != nil {
		return err
	}
	_ = k
	return nil
}

func (f *Fuzzer) record(domain, op string, errno kernel.Errno, val uint64) {
	f.Trace = append(f.Trace, StepRecord{
		Domain: domain, Op: op, Errno: errno, Val: val,
		ObsA: hashView(Observe(f.S.K, f.S.A)),
		ObsB: hashView(Observe(f.S.K, f.S.B)),
	})
}

// domainStep performs one arbitrary syscall from the acting domain and
// checks the other domain's observable state is untouched.
func (f *Fuzzer) domainStep(name string, cntr pm.Ptr, core int, other pm.Ptr, otherName string) error {
	threads := f.runnableThreads(cntr)
	if len(threads) == 0 {
		f.record(name, "stalled", kernel.OK, 0)
		return nil
	}
	tid := threads[f.R.Intn(len(threads))]
	before := Observe(f.S.K, other)
	op, ret := f.randomSyscall(name, cntr, core, tid)
	after := Observe(f.S.K, other)
	if eq, diff := ViewEqual(before, after); !eq {
		f.SCViolations = append(f.SCViolations,
			fmt.Sprintf("SC violated: %s's %s changed %s's observable state: %s",
				name, op, otherName, diff))
	}
	f.record(name, op, ret.Errno, ret.Vals[0])
	return nil
}

// randomSyscall issues one random syscall (possibly with invalid
// arguments — the theorem quantifies over arbitrary calls).
func (f *Fuzzer) randomSyscall(name string, cntr pm.Ptr, core int, tid pm.Ptr) (string, kernel.Ret) {
	k := f.S.K
	r := f.R
	serviceSlot := f.S.SlotAV
	if name == "B" {
		serviceSlot = f.S.SlotBV
	}
	switch r.Intn(16) {
	case 0: // mmap fresh range
		count := 1 + r.Intn(3)
		va := hw.VirtAddr(f.vaNext[name])
		f.vaNext[name] += uint64(count+1) * hw.PageSize4K
		ret := k.SysMmap(core, tid, va, count, hw.Size4K, pt.RW)
		if ret.Errno == kernel.OK {
			for i := 0; i < count; i++ {
				f.mapped[name] = append(f.mapped[name], va+hw.VirtAddr(i)*hw.PageSize4K)
			}
		}
		return "mmap", ret
	case 1: // munmap a live mapping (or a bogus address)
		if m := f.mapped[name]; len(m) > 0 && r.Bool() {
			i := r.Intn(len(m))
			va := m[i]
			ret := k.SysMunmap(core, tid, va, 1, hw.Size4K)
			if ret.Errno == kernel.OK {
				f.mapped[name] = append(m[:i], m[i+1:]...)
			}
			return "munmap", ret
		}
		return "munmap", k.SysMunmap(core, tid, hw.VirtAddr(r.Uint64n(1<<32))&^0xfff, 1, hw.Size4K)
	case 2: // write into an own mapping (user-level step; must not affect the peer)
		if m := f.mapped[name]; len(m) > 0 {
			va := m[r.Intn(len(m))]
			proc := k.PM.Proc(k.PM.Thrd(tid).OwningProc)
			var buf [16]byte
			r.Bytes(buf[:])
			k.Machine.MMU.Store(proc.PageTable.CR3(), va, buf[:])
		}
		return "store", kernel.Ret{}
	case 3: // new child container
		ret := k.SysNewContainer(core, tid, uint64(4+r.Intn(12)), []int{core})
		if ret.Errno == kernel.OK {
			f.children[name] = append(f.children[name], pm.Ptr(ret.Vals[0]))
		}
		return "new_container", ret
	case 4: // kill a child container
		if ch := f.children[name]; len(ch) > 0 {
			i := r.Intn(len(ch))
			ret := k.SysKillContainer(core, tid, ch[i])
			if ret.Errno == kernel.OK {
				f.children[name] = append(ch[:i], ch[i+1:]...)
			}
			return "kill_container", ret
		}
		// Arbitrary kill attempt against the peer: must be denied.
		target := f.S.B
		if name == "B" {
			target = f.S.A
		}
		return "kill_container(peer)", k.SysKillContainer(core, tid, target)
	case 5: // new process
		return "new_proc", k.SysNewProcess(core, tid)
	case 6: // new thread
		return "new_thread", k.SysNewThreadIn(core, tid, k.PM.Thrd(tid).OwningProc, core)
	case 7: // new endpoint in a random slot (may collide -> EINVAL)
		return "new_endpoint", k.SysNewEndpoint(core, tid, r.Intn(pm.MaxEndpoints+2)-1)
	case 8: // close a random slot
		return "close_endpoint", k.SysCloseEndpoint(core, tid, r.Intn(pm.MaxEndpoints))
	case 9: // call the service, sometimes sharing a page
		args := kernel.SendArgs{Regs: [4]uint64{r.Uint64() % 1000}}
		if m := f.mapped[name]; len(m) > 0 && r.Bool() {
			args.SendPage = true
			args.PageVA = m[r.Intn(len(m))]
		}
		return "call(V)", k.SysCall(core, tid, serviceSlot, args)
	case 10: // plain send on the service slot (may block this thread)
		args := kernel.SendArgs{Regs: [4]uint64{r.Uint64() % 1000}}
		if m := f.mapped[name]; len(m) > 0 && r.Bool() {
			args.SendPage = true
			args.PageVA = m[r.Intn(len(m))]
		}
		return "send(V)", k.SysSend(core, tid, serviceSlot, args)
	case 11: // send on a random (often invalid) slot with garbage
		return "send(junk)", k.SysSend(core, tid, r.Intn(pm.MaxEndpoints),
			kernel.SendArgs{SendPage: r.Bool(), PageVA: hw.VirtAddr(r.Uint64n(1 << 33)),
				SendEdpt: r.Bool(), EdptSlot: r.Intn(pm.MaxEndpoints)})
	case 12: // yield
		return "yield", k.SysYield(core, tid)
	case 13: // bounded (iterative) kill of an own child container
		if ch := f.children[name]; len(ch) > 0 {
			i := r.Intn(len(ch))
			ret := k.SysKillContainerBounded(core, tid, ch[i], 1+r.Intn(3))
			if ret.Errno == kernel.OK {
				f.children[name] = append(ch[:i], ch[i+1:]...)
			}
			return "kill_container_bounded", ret
		}
		return "kill_container_bounded(noop)", kernel.Ret{}
	case 14: // exit a spare thread (never the domain's last runnable one)
		runnable := f.runnableThreads(cntr)
		if len(runnable) > 1 && runnable[len(runnable)-1] != tid {
			return "exit_thread", k.SysExitThread(core, runnable[len(runnable)-1])
		}
		return "exit_thread(noop)", kernel.Ret{}
	default: // mmap with hostile arguments
		return "mmap(junk)", k.SysMmap(core, tid,
			hw.VirtAddr(r.Uint64n(1<<40)), int(r.Uint64n(5))-1, hw.Size4K, pt.RW)
	}
}

// Run performs n fuzz steps.
func (f *Fuzzer) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := f.Step(); err != nil {
			return fmt.Errorf("step %d: %w", i, err)
		}
	}
	return nil
}

// ReplayTrace runs a fresh fuzzer with the same seed and step count and
// returns its trace — output consistency (OC) holds iff two replays
// produce identical traces.
func ReplayTrace(seed uint64, steps int) ([]StepRecord, error) {
	f, err := NewFuzzer(seed)
	if err != nil {
		return nil, err
	}
	if err := f.Run(steps); err != nil {
		return nil, err
	}
	if len(f.SCViolations) > 0 {
		return nil, fmt.Errorf("step consistency violated: %s", f.SCViolations[0])
	}
	return f.Trace, nil
}

// TracesEqual compares two traces and reports the first divergence.
func TracesEqual(a, b []StepRecord) (bool, string) {
	if len(a) != len(b) {
		return false, fmt.Sprintf("length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return false, fmt.Sprintf("step %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	return true, ""
}
