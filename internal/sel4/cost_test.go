package sel4

import (
	"testing"

	"atmosphere/internal/hw"
	"atmosphere/internal/mem"
	"atmosphere/internal/pt"
)

// The baseline's value is its cycle accounting: Table 3 compares seL4's
// fastpath against Atmosphere's, so each syscall's cost must be an
// exact, stable function of the hw cost constants. These tests pin the
// arithmetic term by term.

// lookupCost is one CNode decode: three dependent cache-line references
// at double touch weight.
const lookupCost = 3 * hw.CostCacheTouch * 2

func TestRecvCostExact(t *testing.T) {
	k, clk, _, server := pair(t)
	before := clk.Cycles()
	if err := k.Recv(server, 1); err != nil {
		t.Fatal(err)
	}
	want := uint64(hw.CostSyscallEntry + lookupCost + 4*hw.CostCacheTouch + hw.CostSyscallExit)
	if got := clk.Cycles() - before; got != want {
		t.Fatalf("recv = %d cycles, want %d", got, want)
	}
}

func TestCallAndReplyCostExact(t *testing.T) {
	k, clk, client, server := pair(t)
	if err := k.Recv(server, 1); err != nil {
		t.Fatal(err)
	}
	// Fastpath: entry, one cap lookup, endpoint update + MR transfer
	// (the 170-cycle constant), direct switch, exit.
	want := uint64(hw.CostSyscallEntry + lookupCost + 170 + hw.CostDirectSwitch + hw.CostSyscallExit)

	before := clk.Cycles()
	if _, err := k.Call(client, 1, [4]uint64{1}); err != nil {
		t.Fatal(err)
	}
	if got := clk.Cycles() - before; got != want {
		t.Fatalf("call = %d cycles, want %d", got, want)
	}
	before = clk.Cycles()
	if _, err := k.ReplyRecv(server, 1, [4]uint64{2}); err != nil {
		t.Fatal(err)
	}
	if got := clk.Cycles() - before; got != want {
		t.Fatalf("reply_recv = %d cycles, want %d", got, want)
	}
	// The full round trip is what Table 3 reports: 2x the fastpath,
	// within a couple of cycles of the paper's 1026 measurement.
	if rt := 2 * want; rt < 1024 || rt > 1100 {
		t.Fatalf("round trip = %d cycles, out of the paper's band", rt)
	}
}

// TestPageMapOverheadExact separates Page_Map into the shared
// page-table machinery (measured by running the identical Map4K on a
// twin table) and seL4's capability overhead: two lookups, the ASID
// walk, and the CDT insert. The difference must be exactly the modeled
// overhead — that gap is the Table 3 story (2650 vs 1984 cycles).
func TestPageMapOverheadExact(t *testing.T) {
	phys := hw.NewPhysMem(256)
	clk := &hw.Clock{}
	alloc := mem.NewAllocator(phys, clk, 1)
	k := New(alloc, clk)

	tableA, err := pt.New(alloc, clk)
	if err != nil {
		t.Fatal(err)
	}
	tableB, err := pt.New(alloc, clk)
	if err != nil {
		t.Fatal(err)
	}
	frameA, err := alloc.AllocUserPage4K()
	if err != nil {
		t.Fatal(err)
	}
	frameB, err := alloc.AllocUserPage4K()
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCSpace(8)
	cs.Install(1, Cap{Type: CapFrame, Object: uint64(frameA)})
	cs.Install(2, Cap{Type: CapVSpace, Object: uint64(tableA.CR3())})
	tcb := &TCB{CSpace: cs}

	const va = hw.VirtAddr(0x400000)
	before := clk.Cycles()
	if err := k.PageMap(tcb, 1, 2, tableA, va); err != nil {
		t.Fatal(err)
	}
	pageMapCost := clk.Cycles() - before

	before = clk.Cycles()
	if err := tableB.Map4K(va, frameB, pt.RW); err != nil {
		t.Fatal(err)
	}
	rawMapCost := clk.Cycles() - before

	wantOverhead := uint64(hw.CostSyscallEntry + hw.CostSyscallExit + 2*lookupCost +
		(2*hw.CostCacheMiss + 4*hw.CostCacheTouch) + // ASID pool walk
		(5*hw.CostCacheMiss + 10*hw.CostCacheTouch) + // CDT insert
		hw.CostInvlpg)
	if got := pageMapCost - rawMapCost; got != wantOverhead {
		t.Fatalf("Page_Map capability overhead = %d cycles, want %d (total %d, raw map %d)",
			got, wantOverhead, pageMapCost, rawMapCost)
	}
}

// TestCostCountersTrack: the Calls/Replies/Maps counters follow the
// operations one to one (the bench report divides cycles by them).
func TestCostCountersTrack(t *testing.T) {
	k, _, client, server := pair(t)
	if err := k.Recv(server, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := k.Call(client, 1, [4]uint64{}); err != nil {
			t.Fatal(err)
		}
		if _, err := k.ReplyRecv(server, 1, [4]uint64{}); err != nil {
			t.Fatal(err)
		}
	}
	if k.Calls != 4 || k.Replies != 4 {
		t.Fatalf("counters calls=%d replies=%d, want 4/4", k.Calls, k.Replies)
	}
}
