package sel4

import (
	"testing"

	"atmosphere/internal/hw"
	"atmosphere/internal/mem"
	"atmosphere/internal/pt"
)

func newKernel(t *testing.T) (*Kernel, *hw.Clock, *mem.Allocator) {
	t.Helper()
	phys := hw.NewPhysMem(256)
	clk := &hw.Clock{}
	alloc := mem.NewAllocator(phys, clk, 1)
	return New(alloc, clk), clk, alloc
}

func pair(t *testing.T) (*Kernel, *hw.Clock, *TCB, *TCB) {
	t.Helper()
	k, clk, _ := newKernel(t)
	cs := NewCSpace(16)
	cs.Install(1, Cap{Type: CapEndpoint, Object: 42, Badge: 7})
	client := &TCB{Name: "client", CSpace: cs}
	server := &TCB{Name: "server", CSpace: cs}
	return k, clk, client, server
}

func TestCallReplyRoundTrip(t *testing.T) {
	k, _, client, server := pair(t)
	if err := k.Recv(server, 1); err != nil {
		t.Fatal(err)
	}
	got, err := k.Call(client, 1, [4]uint64{11, 22, 33, 0})
	if err != nil || got != server {
		t.Fatalf("call -> %v err %v", got, err)
	}
	if server.MRs[0] != 11 || server.MRs[3] != 7 {
		t.Fatalf("server MRs %v (badge expected in MR3)", server.MRs)
	}
	if !client.Blocked || server.Blocked {
		t.Fatal("blocking states wrong after call")
	}
	back, err := k.ReplyRecv(server, 1, [4]uint64{44})
	if err != nil || back != client {
		t.Fatalf("reply -> %v err %v", back, err)
	}
	if client.MRs[0] != 44 || client.Blocked {
		t.Fatal("client not resumed with reply")
	}
	if !server.Blocked {
		t.Fatal("server not re-queued")
	}
}

func TestCallWithoutServerFails(t *testing.T) {
	k, _, client, _ := pair(t)
	if _, err := k.Call(client, 1, [4]uint64{}); err == nil {
		t.Fatal("call with no waiter succeeded")
	}
}

func TestLookupFailures(t *testing.T) {
	k, _, client, _ := pair(t)
	if _, err := k.Call(client, 9, [4]uint64{}); err == nil {
		t.Fatal("empty slot lookup succeeded")
	}
	client.CSpace.Install(2, Cap{Type: CapFrame, Object: 0x1000})
	if _, err := k.Call(client, 2, [4]uint64{}); err != ErrWrongType {
		t.Fatalf("frame cap accepted for call: %v", err)
	}
	if err := k.Recv(client, 2); err != ErrWrongType {
		t.Fatal("frame cap accepted for recv")
	}
}

func TestReplyWithoutCallFails(t *testing.T) {
	k, _, _, server := pair(t)
	if _, err := k.ReplyRecv(server, 1, [4]uint64{}); err != ErrNoReplyCap {
		t.Fatalf("reply without caller: %v", err)
	}
}

func TestPageMap(t *testing.T) {
	k, clk, alloc := newKernel(t)
	table, err := pt.New(alloc, clk)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := alloc.AllocUserPage4K()
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCSpace(8)
	cs.Install(1, Cap{Type: CapFrame, Object: uint64(frame)})
	cs.Install(2, Cap{Type: CapVSpace, Object: uint64(table.CR3())})
	tcb := &TCB{CSpace: cs}
	if err := k.PageMap(tcb, 1, 2, table, 0x400000); err != nil {
		t.Fatal(err)
	}
	e, ok := table.Lookup(0x400000)
	if !ok || e.Phys != frame {
		t.Fatal("mapping not installed")
	}
	// Wrong cap types rejected.
	if err := k.PageMap(tcb, 2, 2, table, 0x401000); err != ErrWrongType {
		t.Fatal("vspace cap accepted as frame")
	}
	if err := k.PageMap(tcb, 1, 1, table, 0x401000); err != ErrWrongType {
		t.Fatal("frame cap accepted as vspace")
	}
}

func TestCyclesCharged(t *testing.T) {
	k, clk, client, server := pair(t)
	if err := k.Recv(server, 1); err != nil {
		t.Fatal(err)
	}
	before := clk.Cycles()
	if _, err := k.Call(client, 1, [4]uint64{}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ReplyRecv(server, 1, [4]uint64{}); err != nil {
		t.Fatal(err)
	}
	rt := clk.Cycles() - before
	// The round trip should land in the high hundreds to ~1.3K cycles
	// (the paper measures 1026 for seL4).
	if rt < 600 || rt > 1500 {
		t.Fatalf("call/reply round trip = %d cycles", rt)
	}
}
