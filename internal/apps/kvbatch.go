package apps

import (
	"encoding/binary"

	"atmosphere/internal/hw"
)

// Packed single-word kv requests, the wire shape of the batched RPC
// path (docs/BATCHING.md): one request is one 8-byte word, so 512 of
// them fill a 4 KiB page that moves by grant instead of scalar-copy
// IPC, and a reply overwrites its request word in place. Bit 0 selects
// the op; the remaining bits are the key material. SETs derive their
// 8-byte value from the key, which keeps the request self-contained —
// exactly what a load generator replaying a key distribution produces.

// PackKVReq packs one request word: set selects SET over GET, h is the
// key material (bit 0 is reclaimed for the opcode).
func PackKVReq(set bool, h uint64) uint64 {
	req := h &^ 1
	if set {
		req |= 1
	}
	return req
}

// kvRegValue derives a SET's 8-byte value from its key word.
func kvRegValue(key uint64) uint64 { return key ^ 0x9e3779b97f4a7c15 }

// ServeReg serves one packed request against the store, charging the
// same protocol overhead and probe costs as the framed path, and
// returns the reply word: the stored value for a GET hit, 1 for a SET,
// 0 for a miss or a full table. The store must be shaped 8/8
// (key/value) for packed serving.
func (s *KVStore) ServeReg(clk *hw.Clock, req uint64) uint64 {
	if clk != nil {
		clk.Charge(ServeCycles)
	}
	var key, val [8]byte
	k := req &^ 1
	binary.LittleEndian.PutUint64(key[:], k)
	if req&1 == 1 {
		binary.LittleEndian.PutUint64(val[:], kvRegValue(k))
		if !s.Set(clk, key[:], val[:]) {
			return 0
		}
		return 1
	}
	v, ok := s.Get(clk, key[:])
	if !ok {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}
