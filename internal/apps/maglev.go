// Package apps implements the three data-intensive applications of the
// evaluation (§6.6): the Maglev load balancer, a memcached-style
// key-value store, and a static web server. Each is a real
// implementation of the algorithm (Maglev's permutation-table population,
// FNV open addressing with linear probing, HTTP parsing) whose packet
// processing plugs into the driver configurations as an AppWork.
package apps

import (
	"fmt"
	"hash/fnv"

	"atmosphere/internal/hw"
	"atmosphere/internal/netproto"
)

// Maglev implements Google's Maglev consistent hashing (§6.6, [55]):
// each backend generates a permutation of table positions from two
// hashes of its name (offset, skip), and the population algorithm lets
// backends claim positions round-robin until the lookup table is full.
// The result balances within ~1% and minimizes disruption on backend
// changes.
type Maglev struct {
	backends []string
	vips     []netproto.IPv4
	// active marks backends currently claiming table positions.
	// Removing a backend deactivates it rather than reindexing, so
	// every surviving backend keeps its permutation (offset, skip) and
	// the repopulated table disrupts a minimal fraction of positions —
	// Maglev's headline property.
	active []bool
	m      uint64 // table size, prime
	table  []int32

	// Stats.
	Forwarded uint64
}

// DefaultTableSize is a small prime (Maglev's paper uses 65537 for
// evaluation); it trades memory for balance quality.
const DefaultTableSize = 65537

// NewMaglev builds a load balancer for the named backends with their
// addresses.
func NewMaglev(backends []string, addrs []netproto.IPv4, tableSize uint64) (*Maglev, error) {
	if len(backends) == 0 || len(backends) != len(addrs) {
		return nil, fmt.Errorf("apps: need equal non-empty backends and addresses")
	}
	if tableSize == 0 {
		tableSize = DefaultTableSize
	}
	m := &Maglev{backends: backends, vips: addrs, m: tableSize}
	m.active = make([]bool, len(backends))
	for i := range m.active {
		m.active[i] = true
	}
	m.populate()
	return m, nil
}

func hash64(s string, seed uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(s))
	return h.Sum64()
}

// populate is the algorithm from §3.4 of the Maglev paper: round-robin
// over the active backends, each taking its next preferred free slot.
// With no active backend the table is all -1 and Lookup returns -1.
func (m *Maglev) populate() {
	n := len(m.backends)
	offsets := make([]uint64, n)
	skips := make([]uint64, n)
	next := make([]uint64, n)
	live := 0
	for i, b := range m.backends {
		offsets[i] = hash64(b, 0xc0ffee) % m.m
		skips[i] = hash64(b, 0xdecade)%(m.m-1) + 1
		if m.active[i] {
			live++
		}
	}
	m.table = make([]int32, m.m)
	for i := range m.table {
		m.table[i] = -1
	}
	if live == 0 {
		return
	}
	filled := uint64(0)
	for filled < m.m {
		for i := 0; i < n && filled < m.m; i++ {
			if !m.active[i] {
				continue
			}
			c := (offsets[i] + next[i]*skips[i]) % m.m
			for m.table[c] >= 0 {
				next[i]++
				c = (offsets[i] + next[i]*skips[i]) % m.m
			}
			m.table[c] = int32(i)
			next[i]++
			filled++
		}
	}
}

// AddBackend activates a backend: a known name is reinstated (a healed
// machine returning to the pool), an unknown one appended with addr.
// The table is repopulated; surviving backends keep their permutations,
// so disruption is limited to the positions the new backend claims.
func (m *Maglev) AddBackend(name string, addr netproto.IPv4) error {
	for i, b := range m.backends {
		if b != name {
			continue
		}
		if m.active[i] {
			return fmt.Errorf("apps: maglev: backend %q already active", name)
		}
		m.active[i] = true
		m.vips[i] = addr
		m.populate()
		return nil
	}
	m.backends = append(m.backends, name)
	m.vips = append(m.vips, addr)
	m.active = append(m.active, true)
	m.populate()
	return nil
}

// RemoveBackend deactivates a backend (a dead machine leaving the
// pool) and repopulates the table. The backend keeps its index, so a
// later AddBackend reinstates it with the same permutation.
func (m *Maglev) RemoveBackend(name string) error {
	for i, b := range m.backends {
		if b != name {
			continue
		}
		if !m.active[i] {
			return fmt.Errorf("apps: maglev: backend %q already removed", name)
		}
		m.active[i] = false
		m.populate()
		return nil
	}
	return fmt.Errorf("apps: maglev: unknown backend %q", name)
}

// Lookup returns the backend index for a flow, or -1 with no active
// backends.
func (m *Maglev) Lookup(t netproto.FiveTuple) int {
	h := fnv.New64a()
	h.Write(t.SrcIP[:])
	h.Write(t.DstIP[:])
	h.Write([]byte{byte(t.SrcPort >> 8), byte(t.SrcPort), byte(t.DstPort >> 8), byte(t.DstPort), t.Proto})
	return int(m.table[h.Sum64()%m.m])
}

// TableCounts returns how many table entries each backend owns (balance
// verification). Inactive backends own zero.
func (m *Maglev) TableCounts() []int {
	counts := make([]int, len(m.backends))
	for _, b := range m.table {
		if b >= 0 {
			counts[b]++
		}
	}
	return counts
}

// TableSnapshot copies the lookup table — position → backend index, -1
// for unowned — for disruption measurements.
func (m *Maglev) TableSnapshot() []int32 {
	out := make([]int32, len(m.table))
	copy(out, m.table)
	return out
}

// Backends returns the backend count (active or not).
func (m *Maglev) Backends() int { return len(m.backends) }

// ActiveBackends returns how many backends currently claim positions.
func (m *Maglev) ActiveBackends() int {
	n := 0
	for _, a := range m.active {
		if a {
			n++
		}
	}
	return n
}

// BackendAddr returns backend i's address.
func (m *Maglev) BackendAddr(i int) netproto.IPv4 { return m.vips[i] }

// ProcessCycles is the measured per-packet forwarding cost: header
// parse, flow hash, one table load (the 64K-entry table misses L1), and
// the incremental checksum rewrite.
const ProcessCycles = 118

// Forward processes one frame in place: parse, look up the backend,
// rewrite the destination, and report whether to transmit. Malformed
// frames are dropped.
func (m *Maglev) Forward(clk *hw.Clock, frame []byte) bool {
	clk.Charge(ProcessCycles)
	p, err := netproto.ParseUDP(frame)
	if err != nil {
		return false
	}
	idx := m.Lookup(p.Tuple())
	if idx < 0 {
		return false
	}
	if err := netproto.RewriteDstIP(frame, m.vips[idx]); err != nil {
		return false
	}
	m.Forwarded++
	return true
}
