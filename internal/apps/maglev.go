// Package apps implements the three data-intensive applications of the
// evaluation (§6.6): the Maglev load balancer, a memcached-style
// key-value store, and a static web server. Each is a real
// implementation of the algorithm (Maglev's permutation-table population,
// FNV open addressing with linear probing, HTTP parsing) whose packet
// processing plugs into the driver configurations as an AppWork.
package apps

import (
	"fmt"
	"hash/fnv"

	"atmosphere/internal/hw"
	"atmosphere/internal/netproto"
)

// Maglev implements Google's Maglev consistent hashing (§6.6, [55]):
// each backend generates a permutation of table positions from two
// hashes of its name (offset, skip), and the population algorithm lets
// backends claim positions round-robin until the lookup table is full.
// The result balances within ~1% and minimizes disruption on backend
// changes.
type Maglev struct {
	backends []string
	vips     []netproto.IPv4
	m        uint64 // table size, prime
	table    []int32

	// Stats.
	Forwarded uint64
}

// DefaultTableSize is a small prime (Maglev's paper uses 65537 for
// evaluation); it trades memory for balance quality.
const DefaultTableSize = 65537

// NewMaglev builds a load balancer for the named backends with their
// addresses.
func NewMaglev(backends []string, addrs []netproto.IPv4, tableSize uint64) (*Maglev, error) {
	if len(backends) == 0 || len(backends) != len(addrs) {
		return nil, fmt.Errorf("apps: need equal non-empty backends and addresses")
	}
	if tableSize == 0 {
		tableSize = DefaultTableSize
	}
	m := &Maglev{backends: backends, vips: addrs, m: tableSize}
	m.populate()
	return m, nil
}

func hash64(s string, seed uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(s))
	return h.Sum64()
}

// populate is the algorithm from §3.4 of the Maglev paper: round-robin
// over backends, each taking its next preferred free slot.
func (m *Maglev) populate() {
	n := len(m.backends)
	offsets := make([]uint64, n)
	skips := make([]uint64, n)
	next := make([]uint64, n)
	for i, b := range m.backends {
		offsets[i] = hash64(b, 0xc0ffee) % m.m
		skips[i] = hash64(b, 0xdecade)%(m.m-1) + 1
	}
	m.table = make([]int32, m.m)
	for i := range m.table {
		m.table[i] = -1
	}
	filled := uint64(0)
	for filled < m.m {
		for i := 0; i < n && filled < m.m; i++ {
			c := (offsets[i] + next[i]*skips[i]) % m.m
			for m.table[c] >= 0 {
				next[i]++
				c = (offsets[i] + next[i]*skips[i]) % m.m
			}
			m.table[c] = int32(i)
			next[i]++
			filled++
		}
	}
}

// Lookup returns the backend index for a flow.
func (m *Maglev) Lookup(t netproto.FiveTuple) int {
	h := fnv.New64a()
	h.Write(t.SrcIP[:])
	h.Write(t.DstIP[:])
	h.Write([]byte{byte(t.SrcPort >> 8), byte(t.SrcPort), byte(t.DstPort >> 8), byte(t.DstPort), t.Proto})
	return int(m.table[h.Sum64()%m.m])
}

// TableCounts returns how many table entries each backend owns (balance
// verification).
func (m *Maglev) TableCounts() []int {
	counts := make([]int, len(m.backends))
	for _, b := range m.table {
		counts[b]++
	}
	return counts
}

// Backends returns the backend count.
func (m *Maglev) Backends() int { return len(m.backends) }

// ProcessCycles is the measured per-packet forwarding cost: header
// parse, flow hash, one table load (the 64K-entry table misses L1), and
// the incremental checksum rewrite.
const ProcessCycles = 118

// Forward processes one frame in place: parse, look up the backend,
// rewrite the destination, and report whether to transmit. Malformed
// frames are dropped.
func (m *Maglev) Forward(clk *hw.Clock, frame []byte) bool {
	clk.Charge(ProcessCycles)
	p, err := netproto.ParseUDP(frame)
	if err != nil {
		return false
	}
	idx := m.Lookup(p.Tuple())
	if err := netproto.RewriteDstIP(frame, m.vips[idx]); err != nil {
		return false
	}
	m.Forwarded++
	return true
}
