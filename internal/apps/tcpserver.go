package apps

import (
	"atmosphere/internal/hw"
	"atmosphere/internal/netproto"
)

// TCPServer is the server-side TCP-lite engine httpd listens behind: a
// per-connection state machine handling the three-way handshake,
// in-order data segments (responses piggyback the ACK), and FIN
// teardown. The simulated link is lossless and ordered, so there is no
// retransmission machinery — what remains is exactly the per-segment
// work the evaluation's request rate is sensitive to.

// SegmentCycles prices processing one inbound TCP segment: demux, state
// machine, sequence bookkeeping, socket-buffer management, and the
// response segment's construction. The paper's httpd sustains 99.4K
// req/s on one 2.2 GHz core — 22.1K cycles per request end to end — and
// with one request per segment on keep-alive connections nearly all of
// that is this per-segment work; the constant is calibrated accordingly.
const SegmentCycles = 21_800

// tcpState is a connection's state.
type tcpState uint8

const (
	tcpSynRcvd tcpState = iota
	tcpEstablished
	tcpClosed
)

type tcpConn struct {
	state    tcpState
	nextSeq  uint32 // our next sequence number
	expected uint32 // next sequence we expect from the peer
}

// RequestHandler produces a response for one application-layer request;
// it returns the response length written into resp.
type RequestHandler func(clk *hw.Clock, payload []byte, resp []byte) int

// TCPServer serves one listening port.
type TCPServer struct {
	port    uint16
	conns   map[netproto.FiveTuple]*tcpConn
	handler RequestHandler
	resp    []byte

	Accepted, Requests, Closed, Dropped uint64
}

// NewTCPServer listens on port with the given application handler.
func NewTCPServer(port uint16, handler RequestHandler) *TCPServer {
	return &TCPServer{
		port:    port,
		conns:   make(map[netproto.FiveTuple]*tcpConn),
		handler: handler,
		resp:    make([]byte, 4096),
	}
}

// Connections returns the number of live connections.
func (s *TCPServer) Connections() int { return len(s.conns) }

// HandleFrame processes one inbound frame and, when a reply segment is
// due, writes it into txBuf and returns its length (0 = nothing to send).
func (s *TCPServer) HandleFrame(clk *hw.Clock, frame []byte, txBuf []byte) int {
	clk.Charge(SegmentCycles)
	p, err := netproto.ParseTCP(frame)
	if err != nil || p.DstPort != s.port {
		s.Dropped++
		return 0
	}
	tuple := p.Tuple()
	c, known := s.conns[tuple]
	reply := func(seq, ack uint32, flags uint8, payload []byte) int {
		n, err := netproto.BuildTCP(txBuf, p.DstMAC, p.SrcMAC, p.DstIP, p.SrcIP,
			p.DstPort, p.SrcPort, seq, ack, flags, payload)
		if err != nil {
			return 0
		}
		clk.ChargeBytes(len(payload))
		return n
	}
	switch {
	case p.Flags&netproto.TCPSyn != 0 && !known:
		// SYN -> SYN|ACK; our ISN mirrors theirs (deterministic).
		c = &tcpConn{state: tcpSynRcvd, nextSeq: p.Seq + 1000, expected: p.Seq + 1}
		s.conns[tuple] = c
		return reply(c.nextSeq, c.expected, netproto.TCPSyn|netproto.TCPAck, nil)
	case !known:
		// Segment for an unknown connection: RST.
		s.Dropped++
		return reply(p.Ack, p.Seq+1, netproto.TCPRst, nil)
	case p.Flags&netproto.TCPFin != 0:
		delete(s.conns, tuple)
		s.Closed++
		return reply(c.nextSeq, p.Seq+1, netproto.TCPFin|netproto.TCPAck, nil)
	case c.state == tcpSynRcvd && p.Flags&netproto.TCPAck != 0 && len(p.Payload) == 0:
		c.state = tcpEstablished
		c.nextSeq++
		s.Accepted++
		return 0
	default:
		if c.state == tcpSynRcvd {
			// Handshake-completing ACK piggybacked on data.
			c.state = tcpEstablished
			c.nextSeq++
			s.Accepted++
		}
		if len(p.Payload) == 0 {
			return 0 // bare ACK
		}
		if p.Seq != c.expected {
			s.Dropped++ // out-of-order on a lossless link: peer bug
			return 0
		}
		c.expected += uint32(len(p.Payload))
		n := s.handler(clk, p.Payload, s.resp)
		s.Requests++
		if n == 0 {
			return reply(c.nextSeq, c.expected, netproto.TCPAck, nil)
		}
		out := reply(c.nextSeq, c.expected, netproto.TCPAck|netproto.TCPPsh, s.resp[:n])
		c.nextSeq += uint32(n)
		return out
	}
}

// NewHttpdTCP wires an Httpd page set behind a TCP-lite listener on :80.
// The returned server handles raw frames; the Httpd keeps the request
// statistics.
func NewHttpdTCP(pages map[string][]byte) (*TCPServer, *Httpd) {
	h := NewHttpd(pages)
	srv := NewTCPServer(80, func(clk *hw.Clock, payload []byte, resp []byte) int {
		h.Requests++
		req, err := netproto.ParseHTTPRequest(payload)
		if err != nil {
			n, _ := netproto.BuildHTTP404(resp)
			h.NotFound++
			return n
		}
		body, okk := h.pages[req.Path]
		if !okk {
			n, _ := netproto.BuildHTTP404(resp)
			h.NotFound++
			return n
		}
		n, err := netproto.BuildHTTPResponse(resp, body, req.KeepAlive)
		if err != nil {
			return 0
		}
		h.Served++
		return n
	})
	return srv, h
}
