package apps

import (
	"encoding/binary"
	"fmt"
	"testing"

	"atmosphere/internal/hw"
	"atmosphere/internal/netproto"
)

func BenchmarkMaglevPopulate(b *testing.B) {
	names, addrs := benchBackends(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewMaglev(names, addrs, DefaultTableSize); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaglevLookup(b *testing.B) {
	names, addrs := benchBackends(16)
	m, _ := NewMaglev(names, addrs, DefaultTableSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Lookup(netproto.FiveTuple{SrcPort: uint16(i), DstPort: 80, Proto: 17})
	}
}

func BenchmarkMaglevForward(b *testing.B) {
	names, addrs := benchBackends(16)
	m, _ := NewMaglev(names, addrs, DefaultTableSize)
	var clk hw.Clock
	frame := make([]byte, 128)
	n, _ := netproto.BuildUDP(frame, netproto.MAC{1}, netproto.MAC{2},
		netproto.IPv4{10, 0, 0, 1}, netproto.IPv4{192, 168, 1, 1}, 5555, 80, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.Forward(&clk, frame[:n]) {
			b.Fatal("forward refused")
		}
	}
}

func benchBackends(n int) ([]string, []netproto.IPv4) {
	var names []string
	var addrs []netproto.IPv4
	for i := 0; i < n; i++ {
		names = append(names, fmt.Sprintf("b%02d", i))
		addrs = append(addrs, netproto.IPv4{172, 16, 0, byte(i + 1)})
	}
	return names, addrs
}

func BenchmarkKVStoreGet(b *testing.B) {
	s, _ := NewKVStore(1<<20, 16, 16)
	var clk hw.Clock
	key := make([]byte, 16)
	val := make([]byte, 16)
	for i := 0; i < 10000; i++ {
		binary.LittleEndian.PutUint64(key, uint64(i))
		s.Set(&clk, key, val)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(key, uint64(i%10000))
		if _, ok := s.Get(&clk, key); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkKVStoreSet(b *testing.B) {
	s, _ := NewKVStore(1<<21, 16, 16)
	var clk hw.Clock
	key := make([]byte, 16)
	val := make([]byte, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(key, uint64(i)%(1<<20))
		if !s.Set(&clk, key, val) {
			b.Fatal("set failed")
		}
	}
}

func BenchmarkHttpdServe(b *testing.B) {
	h := NewHttpd(map[string][]byte{"/index.html": make([]byte, 612)})
	var clk hw.Clock
	frame := make([]byte, 512)
	req := []byte("GET /index.html HTTP/1.1\r\nHost: atmo\r\n\r\n")
	n, _ := netproto.BuildUDP(frame, netproto.MAC{1}, netproto.MAC{2},
		netproto.IPv4{10, 0, 0, 9}, netproto.IPv4{10, 0, 0, 1}, 40000, 80, req)
	master := append([]byte(nil), frame[:n]...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(frame, master) // Serve overwrites the payload with the response
		if !h.Serve(&clk, frame[:n]) {
			b.Fatal("serve refused")
		}
	}
}
