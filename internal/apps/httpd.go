package apps

import (
	"atmosphere/internal/hw"
	"atmosphere/internal/netproto"
)

// Httpd is the tiny static web server of §6.6: it polls for requests
// from open connections round-robin, parses them, and serves static
// pages. Connections ride a light datagram transport in this model
// (one request per frame); the wrk-substitute generator opens N
// concurrent connections and pipelines requests exactly as the paper's
// load generator does.
type Httpd struct {
	pages map[string][]byte
	// conns tracks open connections (five-tuples) for keep-alive
	// accounting.
	conns map[netproto.FiveTuple]uint64

	respBuf []byte

	Requests, Served, NotFound uint64
}

// NewHttpd creates a server with the given static pages.
func NewHttpd(pages map[string][]byte) *Httpd {
	cp := make(map[string][]byte, len(pages))
	for k, v := range pages {
		cp[k] = append([]byte(nil), v...)
	}
	return &Httpd{pages: cp, conns: make(map[netproto.FiveTuple]uint64), respBuf: make([]byte, 4096)}
}

// RequestCycles is the per-request cost of the *datagram-mode* server
// (one request per frame, no connection state machine), kept for the
// simple Serve API. It matches the TCP-lite path's per-request cost
// (SegmentCycles in tcpserver.go) so both modes price a request the
// same; the evaluation (bench/fig6) uses the TCP-lite path.
const RequestCycles = 21_600

// Serve handles one request frame and reports whether a response should
// be transmitted. The response body replaces the request payload (the
// driver transmits the same buffer).
func (h *Httpd) Serve(clk *hw.Clock, frame []byte) bool {
	clk.Charge(RequestCycles)
	p, err := netproto.ParseUDP(frame)
	if err != nil {
		return false
	}
	h.Requests++
	h.conns[p.Tuple()]++
	req, err := netproto.ParseHTTPRequest(p.Payload)
	if err != nil {
		return false
	}
	body, okk := h.pages[req.Path]
	if !okk {
		h.NotFound++
		n, _ := netproto.BuildHTTP404(h.respBuf)
		clk.ChargeBytes(n)
		copyInto(p.Payload, h.respBuf[:n])
		return true
	}
	n, err := netproto.BuildHTTPResponse(h.respBuf, body, req.KeepAlive)
	if err != nil {
		return false
	}
	clk.ChargeBytes(n)
	copyInto(p.Payload, h.respBuf[:n])
	h.Served++
	return true
}

// copyInto copies src into dst up to dst's length (responses larger
// than the frame are truncated in this datagram model; the evaluation
// serves a small static page that fits).
func copyInto(dst, src []byte) int {
	return copy(dst, src)
}

// Connections returns the number of distinct connections seen.
func (h *Httpd) Connections() int { return len(h.conns) }
