package apps

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"atmosphere/internal/hw"
	"atmosphere/internal/netproto"
)

// KVStore is the network-attached key-value store of §6.6: an open
// addressing hash table with linear probing and the FNV hash function,
// serving GET/SET requests carried in UDP payloads (the
// memcached-compatible binary shape, simplified).
type KVStore struct {
	keySize, valSize int
	capacity         uint64
	// slots: 1-byte occupancy + key + value, in one flat array for
	// cache-behaviour fidelity.
	slots    []byte
	slotSize int
	used     uint64

	// bigTable marks tables whose working set exceeds the LLC; probes
	// then charge miss-level costs.
	bigTable bool

	Gets, Sets, Hits, Misses uint64
}

// Request opcodes on the wire.
const (
	KVGet = 1
	KVSet = 2
)

// NewKVStore builds a store with the given entry count and fixed
// key/value sizes (the paper evaluates 1M and 8M entries with 8/16/32
// byte keys and values).
func NewKVStore(capacity uint64, keySize, valSize int) (*KVStore, error) {
	if capacity == 0 || keySize <= 0 || valSize <= 0 {
		return nil, fmt.Errorf("apps: bad kv store shape")
	}
	slotSize := 1 + keySize + valSize
	s := &KVStore{
		keySize: keySize, valSize: valSize, capacity: capacity,
		slots: make([]byte, capacity*uint64(slotSize)), slotSize: slotSize,
		// A 1M-entry table of small items is ~tens of MB: past LLC
		// already, but an 8M table misses essentially always.
		bigTable: capacity > 4_000_000,
	}
	return s, nil
}

func (s *KVStore) hash(key []byte) uint64 {
	h := fnv.New64a()
	h.Write(key)
	return h.Sum64() % s.capacity
}

func (s *KVStore) slot(i uint64) []byte {
	off := i * uint64(s.slotSize)
	return s.slots[off : off+uint64(s.slotSize)]
}

func keyEqual(a, b []byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// probeCost charges one probe's memory behaviour.
func (s *KVStore) probeCost(clk *hw.Clock) {
	if clk == nil {
		return
	}
	if s.bigTable {
		clk.Charge(hw.CostCacheMiss)
	} else {
		clk.Charge(hw.CostCacheMiss / 2) // partially cached working set
	}
}

// Set inserts or updates a key. Returns false when the table is full.
func (s *KVStore) Set(clk *hw.Clock, key, val []byte) bool {
	if len(key) != s.keySize || len(val) != s.valSize {
		return false
	}
	s.Sets++
	i := s.hash(key)
	for probes := uint64(0); probes < s.capacity; probes++ {
		sl := s.slot(i)
		s.probeCost(clk)
		if sl[0] == 0 {
			sl[0] = 1
			copy(sl[1:1+s.keySize], key)
			copy(sl[1+s.keySize:], val)
			s.used++
			return true
		}
		if keyEqual(sl[1:1+s.keySize], key) {
			copy(sl[1+s.keySize:], val)
			return true
		}
		i = (i + 1) % s.capacity
	}
	return false
}

// Get looks a key up; the returned slice aliases the table.
func (s *KVStore) Get(clk *hw.Clock, key []byte) ([]byte, bool) {
	if len(key) != s.keySize {
		return nil, false
	}
	s.Gets++
	i := s.hash(key)
	for probes := uint64(0); probes < s.capacity; probes++ {
		sl := s.slot(i)
		s.probeCost(clk)
		if sl[0] == 0 {
			s.Misses++
			return nil, false
		}
		if keyEqual(sl[1:1+s.keySize], key) {
			s.Hits++
			return sl[1+s.keySize:], true
		}
		i = (i + 1) % s.capacity
	}
	s.Misses++
	return nil, false
}

// Used returns the number of live entries.
func (s *KVStore) Used() uint64 { return s.used }

// --- wire protocol -----------------------------------------------------------

// BuildKVRequest writes "op klen key [vlen value]" into buf.
func BuildKVRequest(buf []byte, op byte, key, val []byte) (int, error) {
	n := 3 + len(key)
	if op == KVSet {
		n += 2 + len(val)
	}
	if len(buf) < n {
		return 0, netproto.ErrTooShort
	}
	buf[0] = op
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(key)))
	copy(buf[3:], key)
	if op == KVSet {
		binary.LittleEndian.PutUint16(buf[3+len(key):], uint16(len(val)))
		copy(buf[5+len(key):], val)
	}
	return n, nil
}

// ServeCycles is the per-request protocol overhead on top of the table
// probes: parse, response header, UDP rewrite for the reply.
const ServeCycles = 72

// Serve handles one request frame in place and reports whether a reply
// should be transmitted. Replies overwrite the request payload: status
// byte then the value for hits.
func (s *KVStore) Serve(clk *hw.Clock, frame []byte) bool {
	clk.Charge(ServeCycles)
	p, err := netproto.ParseUDP(frame)
	if err != nil {
		return false
	}
	return s.servePayload(clk, p.Payload)
}

// ServePayload handles one request payload in place — the entry point
// for callers that have already parsed the frame and stripped any
// transport prefix (the cluster's distributed-trace header travels
// ahead of the kv request, so its backends serve the sub-slice after
// it). Charges the same ServeCycles protocol overhead as Serve.
func (s *KVStore) ServePayload(clk *hw.Clock, payload []byte) bool {
	clk.Charge(ServeCycles)
	return s.servePayload(clk, payload)
}

func (s *KVStore) servePayload(clk *hw.Clock, payload []byte) bool {
	if len(payload) < 3 {
		return false
	}
	op := payload[0]
	klen := int(binary.LittleEndian.Uint16(payload[1:3]))
	if len(payload) < 3+klen {
		return false
	}
	key := payload[3 : 3+klen]
	switch op {
	case KVGet:
		val, okk := s.Get(clk, key)
		if okk {
			payload[0] = 1
			copy(payload[1:], val)
		} else {
			payload[0] = 0
		}
		return true
	case KVSet:
		rest := payload[3+klen:]
		if len(rest) < 2 {
			return false
		}
		vlen := int(binary.LittleEndian.Uint16(rest[:2]))
		if len(rest) < 2+vlen {
			return false
		}
		okk := s.Set(clk, key, rest[2:2+vlen])
		if okk {
			payload[0] = 1
		} else {
			payload[0] = 0
		}
		return true
	}
	return false
}
