package apps

import (
	"testing"

	"atmosphere/internal/netproto"
)

// TestWrkRetryBudgetExhausts drives a client against a permanently dead
// backend: every connection must walk deadline → backoff → retransmit
// until the retry budget runs out, then give up — after which Next
// returns nil instead of spinning keep-alives at a corpse.
func TestWrkRetryBudgetExhausts(t *testing.T) {
	var now uint64
	w := NewWrkClient(4, "/index.html")
	w.SetRetryPolicy(func() uint64 { return now }, 5000, 2000, 8000, 2)

	// Each iteration models one scheduling quantum: drain everything
	// sendable (responses never come), then advance time.
	for iter := 0; iter < 1000 && w.GaveUp < 4; iter++ {
		for i := 0; i < 2*len(w.conns); i++ {
			if w.Next() == nil {
				break
			}
		}
		now += 500
	}

	s := w.Stats()
	if s.GaveUp != 4 {
		t.Fatalf("GaveUp = %d, want 4 (all connections)", s.GaveUp)
	}
	// Budget 2 → 3 attempts per connection: 3 timeouts, 2 retries each.
	if s.Timeouts != 12 || s.Retries != 8 {
		t.Fatalf("Timeouts/Retries = %d/%d, want 12/8", s.Timeouts, s.Retries)
	}
	// The client is done: no frame, ever, no matter how long we poll.
	for i := 0; i < 100; i++ {
		now += 500
		if f := w.Next(); f != nil {
			t.Fatalf("client still emitting frames after exhausting its budget")
		}
	}
	if w.Stats() != s {
		t.Fatalf("counters moved after give-up: %+v vs %+v", w.Stats(), s)
	}
}

// TestWrkRetryRecovers: a reply during the retry window resets the
// attempt counter, so a transient stall does not eat the budget.
func TestWrkRetryRecovers(t *testing.T) {
	var now uint64
	w := NewWrkClient(1, "/x")
	w.SetRetryPolicy(func() uint64 { return now }, 5000, 2000, 8000, 2)

	syn := w.Next()
	if syn == nil {
		t.Fatal("no SYN")
	}
	// Let it time out once and retransmit.
	now = 5000
	if f := w.Next(); f != nil {
		t.Fatal("retransmit before backoff elapsed")
	}
	now = 7000
	if f := w.Next(); f == nil {
		t.Fatal("no retransmit after backoff")
	}
	if w.Retries != 1 || w.Timeouts != 1 {
		t.Fatalf("Retries/Timeouts = %d/%d, want 1/1", w.Retries, w.Timeouts)
	}
	// The server finally answers the SYN; the attempt counter resets.
	reply := buildSynAck(t, w)
	w.Consume(reply)
	if w.Handshakes != 1 {
		t.Fatal("handshake not recorded")
	}
	if w.conns[0].attempts != 0 || w.conns[0].nextTryAt != 0 {
		t.Fatalf("retry state not reset: attempts=%d nextTryAt=%d",
			w.conns[0].attempts, w.conns[0].nextTryAt)
	}
	if w.GaveUp != 0 {
		t.Fatal("connection gave up despite recovering")
	}
}

func buildSynAck(t *testing.T, w *WrkClient) []byte {
	t.Helper()
	frame := make([]byte, 128)
	n, err := netproto.BuildTCP(frame, w.srvMAC, w.cliMAC, w.srvIP, w.cliIP,
		80, w.conns[0].port, 7777, w.conns[0].seq+1, netproto.TCPSyn|netproto.TCPAck, nil)
	if err != nil {
		t.Fatal(err)
	}
	return frame[:n]
}
