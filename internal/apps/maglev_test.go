package apps

import (
	"fmt"
	"testing"

	"atmosphere/internal/netproto"
)

func testMaglev(t *testing.T, n int, tableSize uint64) *Maglev {
	t.Helper()
	var names []string
	var addrs []netproto.IPv4
	for i := 0; i < n; i++ {
		names = append(names, fmt.Sprintf("backend-%02d", i))
		addrs = append(addrs, netproto.IPv4{172, 16, 0, byte(i + 1)})
	}
	m, err := NewMaglev(names, addrs, tableSize)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestMaglevRemoveMinimalDisruption is the Maglev paper's consistency
// claim as a property test against the RemoveBackend path: removing 1
// of B backends moves only the dead backend's own positions; the
// fraction of positions that change owner among survivors stays under
// the ~1% balance bound. Adding it back restores the exact original
// table (permutations are per-name).
func TestMaglevRemoveMinimalDisruption(t *testing.T) {
	for _, backends := range []int{4, 8, 16} {
		m := testMaglev(t, backends, DefaultTableSize)
		before := m.TableSnapshot()

		const victim = 1
		name := fmt.Sprintf("backend-%02d", victim)
		if err := m.RemoveBackend(name); err != nil {
			t.Fatal(err)
		}
		after := m.TableSnapshot()

		moved := 0 // positions a *surviving* backend lost
		victimPositions := 0
		for i := range before {
			if before[i] == victim {
				victimPositions++
				continue
			}
			if after[i] != before[i] {
				moved++
			}
		}
		if victimPositions == 0 {
			t.Fatalf("%d backends: victim owned no positions", backends)
		}
		frac := float64(moved) / float64(len(before))
		if frac > 0.01 {
			t.Fatalf("%d backends: %.3f%% of surviving positions changed owner (want <1%%)",
				backends, 100*frac)
		}

		// Reinstating the backend restores the original table exactly.
		if err := m.AddBackend(name, netproto.IPv4{172, 16, 0, victim + 1}); err != nil {
			t.Fatal(err)
		}
		restored := m.TableSnapshot()
		for i := range before {
			if restored[i] != before[i] {
				t.Fatalf("%d backends: position %d not restored (%d vs %d)",
					backends, i, restored[i], before[i])
			}
		}
	}
}

func TestMaglevAddRemoveErrors(t *testing.T) {
	m := testMaglev(t, 4, 251)
	if err := m.RemoveBackend("nope"); err == nil {
		t.Fatal("removing an unknown backend succeeded")
	}
	if err := m.RemoveBackend("backend-00"); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveBackend("backend-00"); err == nil {
		t.Fatal("double remove succeeded")
	}
	if err := m.AddBackend("backend-00", netproto.IPv4{172, 16, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddBackend("backend-00", netproto.IPv4{172, 16, 0, 1}); err == nil {
		t.Fatal("double add succeeded")
	}
	if m.ActiveBackends() != 4 {
		t.Fatalf("active = %d, want 4", m.ActiveBackends())
	}
}

// TestMaglevDrainedTable: with every backend removed the table is
// unowned and Lookup reports -1 instead of crashing.
func TestMaglevDrainedTable(t *testing.T) {
	m := testMaglev(t, 2, 251)
	for i := 0; i < 2; i++ {
		if err := m.RemoveBackend(fmt.Sprintf("backend-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	tuple := netproto.FiveTuple{SrcPort: 1234, DstPort: 80, Proto: netproto.ProtoUDP}
	if idx := m.Lookup(tuple); idx != -1 {
		t.Fatalf("lookup on drained table = %d, want -1", idx)
	}
	for i, c := range m.TableCounts() {
		if c != 0 {
			t.Fatalf("drained table still counts %d positions for backend %d", c, i)
		}
	}
	// A new backend grafted onto a drained table takes every position.
	if err := m.AddBackend("backend-99", netproto.IPv4{172, 16, 0, 99}); err != nil {
		t.Fatal(err)
	}
	if idx := m.Lookup(tuple); idx != 2 {
		t.Fatalf("lookup after graft = %d, want 2", idx)
	}
}

// TestMaglevBalanceAfterRemoval: the repopulated table still balances
// within the paper's ~1% bound across survivors.
func TestMaglevBalanceAfterRemoval(t *testing.T) {
	m := testMaglev(t, 8, DefaultTableSize)
	if err := m.RemoveBackend("backend-03"); err != nil {
		t.Fatal(err)
	}
	counts := m.TableCounts()
	if counts[3] != 0 {
		t.Fatalf("removed backend still owns %d positions", counts[3])
	}
	mean := float64(DefaultTableSize) / 7
	for i, c := range counts {
		if i == 3 {
			continue
		}
		dev := float64(c)/mean - 1
		if dev < -0.02 || dev > 0.02 {
			t.Fatalf("backend %d owns %d positions, %+.2f%% off the mean", i, c, 100*dev)
		}
	}
}
