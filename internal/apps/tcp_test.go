package apps

import (
	"bytes"
	"testing"

	"atmosphere/internal/hw"
	"atmosphere/internal/netproto"
)

// tcpExchange sends one client frame to the server and returns the
// server's reply (nil if none).
func tcpExchange(t *testing.T, srv *TCPServer, clk *hw.Clock, frame []byte) []byte {
	t.Helper()
	var tx [2048]byte
	n := srv.HandleFrame(clk, frame, tx[:])
	if n == 0 {
		return nil
	}
	return append([]byte(nil), tx[:n]...)
}

func buildClientSeg(t *testing.T, port uint16, seq, ack uint32, flags uint8, payload []byte) []byte {
	t.Helper()
	var buf [2048]byte
	n, err := netproto.BuildTCP(buf[:], netproto.MAC{9}, netproto.MAC{2},
		netproto.IPv4{10, 0, 0, 9}, netproto.IPv4{192, 168, 1, 1},
		port, 80, seq, ack, flags, payload)
	if err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), buf[:n]...)
}

func TestTCPBuildParseRoundTrip(t *testing.T) {
	var buf [2048]byte
	payload := []byte("GET / HTTP/1.1\r\n\r\n")
	n, err := netproto.BuildTCP(buf[:], netproto.MAC{1}, netproto.MAC{2},
		netproto.IPv4{1, 2, 3, 4}, netproto.IPv4{5, 6, 7, 8},
		1234, 80, 42, 99, netproto.TCPAck|netproto.TCPPsh, payload)
	if err != nil {
		t.Fatal(err)
	}
	p, err := netproto.ParseTCP(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if p.SrcPort != 1234 || p.DstPort != 80 || p.Seq != 42 || p.Ack != 99 {
		t.Fatalf("header fields %+v", p)
	}
	if p.Flags != netproto.TCPAck|netproto.TCPPsh {
		t.Fatalf("flags %#x", p.Flags)
	}
	// Ethernet padding must not leak into the payload.
	if !bytes.Equal(p.Payload, payload) {
		t.Fatalf("payload %q (len %d), want %q", p.Payload, len(p.Payload), payload)
	}
	if err := netproto.VerifyIPv4Checksum(buf[:n]); err != nil {
		t.Fatal(err)
	}
}

func TestTCPServerHandshakeAndRequest(t *testing.T) {
	srv, h := NewHttpdTCP(map[string][]byte{"/index.html": []byte("<html>tcp</html>")})
	var clk hw.Clock

	// SYN -> SYN|ACK.
	synAck := tcpExchange(t, srv, &clk, buildClientSeg(t, 40000, 100, 0, netproto.TCPSyn, nil))
	if synAck == nil {
		t.Fatal("no SYN|ACK")
	}
	sa, _ := netproto.ParseTCP(synAck)
	if sa.Flags&netproto.TCPSyn == 0 || sa.Flags&netproto.TCPAck == 0 || sa.Ack != 101 {
		t.Fatalf("SYN|ACK wrong: %+v", sa)
	}
	// Request with piggybacked handshake ACK.
	req := []byte("GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n")
	resp := tcpExchange(t, srv, &clk,
		buildClientSeg(t, 40000, 101, sa.Seq+1, netproto.TCPAck|netproto.TCPPsh, req))
	if resp == nil {
		t.Fatal("no response")
	}
	rp, _ := netproto.ParseTCP(resp)
	if !bytes.Contains(rp.Payload, []byte("200 OK")) || !bytes.Contains(rp.Payload, []byte("<html>tcp</html>")) {
		t.Fatalf("response payload %q", rp.Payload)
	}
	if rp.Ack != 101+uint32(len(req)) {
		t.Fatalf("response acks %d", rp.Ack)
	}
	if srv.Accepted != 1 || srv.Requests != 1 || h.Served != 1 {
		t.Fatalf("stats %d %d %d", srv.Accepted, srv.Requests, h.Served)
	}
	// Second request on the same connection (keep-alive).
	resp = tcpExchange(t, srv, &clk,
		buildClientSeg(t, 40000, 101+uint32(len(req)), rp.Seq+uint32(len(rp.Payload)),
			netproto.TCPAck|netproto.TCPPsh, req))
	if resp == nil || srv.Requests != 2 {
		t.Fatal("keep-alive request failed")
	}
}

func TestTCPServerRejectsStrays(t *testing.T) {
	srv, _ := NewHttpdTCP(map[string][]byte{"/": []byte("x")})
	var clk hw.Clock
	// Data for an unknown connection draws an RST.
	rst := tcpExchange(t, srv, &clk,
		buildClientSeg(t, 41000, 5, 0, netproto.TCPAck|netproto.TCPPsh, []byte("GET / HTTP/1.1\r\n\r\n")))
	if rst == nil {
		t.Fatal("no RST")
	}
	p, _ := netproto.ParseTCP(rst)
	if p.Flags&netproto.TCPRst == 0 {
		t.Fatalf("expected RST, got %#x", p.Flags)
	}
	// Wrong port is dropped silently.
	var buf [2048]byte
	n, _ := netproto.BuildTCP(buf[:], netproto.MAC{9}, netproto.MAC{2},
		netproto.IPv4{10, 0, 0, 9}, netproto.IPv4{192, 168, 1, 1},
		40000, 8080, 1, 0, netproto.TCPSyn, nil)
	if out := tcpExchange(t, srv, &clk, buf[:n]); out != nil {
		t.Fatal("wrong-port segment answered")
	}
	// Garbage is dropped.
	if out := tcpExchange(t, srv, &clk, []byte{1, 2, 3}); out != nil {
		t.Fatal("garbage answered")
	}
}

func TestTCPServerFin(t *testing.T) {
	srv, _ := NewHttpdTCP(map[string][]byte{"/": []byte("x")})
	var clk hw.Clock
	tcpExchange(t, srv, &clk, buildClientSeg(t, 40000, 100, 0, netproto.TCPSyn, nil))
	tcpExchange(t, srv, &clk, buildClientSeg(t, 40000, 101, 0, netproto.TCPAck, nil))
	if srv.Connections() != 1 {
		t.Fatalf("connections = %d", srv.Connections())
	}
	finAck := tcpExchange(t, srv, &clk,
		buildClientSeg(t, 40000, 101, 0, netproto.TCPFin|netproto.TCPAck, nil))
	if finAck == nil {
		t.Fatal("no FIN|ACK")
	}
	p, _ := netproto.ParseTCP(finAck)
	if p.Flags&netproto.TCPFin == 0 {
		t.Fatal("FIN not acknowledged with FIN")
	}
	if srv.Connections() != 0 || srv.Closed != 1 {
		t.Fatal("connection not torn down")
	}
}

func TestTCPServerOutOfOrderDropped(t *testing.T) {
	srv, _ := NewHttpdTCP(map[string][]byte{"/": []byte("x")})
	var clk hw.Clock
	synAck := tcpExchange(t, srv, &clk, buildClientSeg(t, 40000, 100, 0, netproto.TCPSyn, nil))
	sa, _ := netproto.ParseTCP(synAck)
	// Wrong sequence number: dropped, no response.
	if out := tcpExchange(t, srv, &clk,
		buildClientSeg(t, 40000, 999, sa.Seq+1, netproto.TCPAck|netproto.TCPPsh,
			[]byte("GET / HTTP/1.1\r\n\r\n"))); out != nil {
		t.Fatal("out-of-order segment answered")
	}
	if srv.Dropped == 0 {
		t.Fatal("drop not counted")
	}
}

func TestWrkClientAgainstServer(t *testing.T) {
	// Drive the wrk client directly against the server: every frame the
	// client emits goes to the server; every server reply goes back.
	srv, h := NewHttpdTCP(map[string][]byte{"/index.html": []byte("<html>wrk</html>")})
	wrk := NewWrkClient(4, "/index.html")
	var clk hw.Clock
	var tx [2048]byte
	for i := 0; i < 64; i++ {
		frame := wrk.Next()
		if n := srv.HandleFrame(&clk, frame, tx[:]); n > 0 {
			wrk.Consume(tx[:n])
		}
	}
	if wrk.Handshakes != 4 {
		t.Fatalf("handshakes = %d", wrk.Handshakes)
	}
	if wrk.Responses < 20 {
		t.Fatalf("responses = %d", wrk.Responses)
	}
	if h.Served != wrk.Responses {
		t.Fatalf("served %d != responses %d", h.Served, wrk.Responses)
	}
	if h.NotFound != 0 || srv.Dropped != 0 {
		t.Fatalf("notfound=%d dropped=%d", h.NotFound, srv.Dropped)
	}
}
