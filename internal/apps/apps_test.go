package apps

import (
	"encoding/binary"
	"fmt"
	"testing"

	"atmosphere/internal/hw"
	"atmosphere/internal/netproto"
)

func backends(n int) ([]string, []netproto.IPv4) {
	var names []string
	var addrs []netproto.IPv4
	for i := 0; i < n; i++ {
		names = append(names, fmt.Sprintf("backend-%d", i))
		addrs = append(addrs, netproto.IPv4{172, 16, byte(i >> 8), byte(i)})
	}
	return names, addrs
}

func TestMaglevTableComplete(t *testing.T) {
	names, addrs := backends(7)
	m, err := NewMaglev(names, addrs, 4099)
	if err != nil {
		t.Fatal(err)
	}
	counts := m.TableCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 4099 {
		t.Fatalf("table has %d entries", total)
	}
}

func TestMaglevBalance(t *testing.T) {
	// The Maglev paper's property: with M >> N, backends own table
	// shares within ~1-2% of each other.
	names, addrs := backends(10)
	m, _ := NewMaglev(names, addrs, 65537)
	counts := m.TableCounts()
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if float64(max-min)/float64(max) > 0.02 {
		t.Fatalf("imbalance %d..%d", min, max)
	}
}

func TestMaglevMinimalDisruption(t *testing.T) {
	// Removing one backend must only remap flows that pointed at it
	// (plus a small epsilon of churn inherent to the algorithm).
	names, addrs := backends(8)
	m1, _ := NewMaglev(names, addrs, 65537)
	m2, _ := NewMaglev(names[:7], addrs[:7], 65537)
	moved, shouldMove := 0, 0
	for i := 0; i < 20000; i++ {
		tuple := netproto.FiveTuple{
			SrcIP:   netproto.IPv4{10, 0, byte(i >> 8), byte(i)},
			DstIP:   netproto.IPv4{192, 168, 1, 1},
			SrcPort: uint16(i), DstPort: 80, Proto: 17,
		}
		b1, b2 := m1.Lookup(tuple), m2.Lookup(tuple)
		if b1 == 7 {
			shouldMove++
			continue
		}
		if b1 != b2 {
			moved++
		}
	}
	if shouldMove == 0 {
		t.Fatal("degenerate test: no flows on removed backend")
	}
	if float64(moved)/20000 > 0.10 {
		t.Fatalf("excess disruption: %d of 20000 surviving flows moved", moved)
	}
}

func TestMaglevLookupDeterministic(t *testing.T) {
	names, addrs := backends(4)
	m, _ := NewMaglev(names, addrs, 65537)
	tuple := netproto.FiveTuple{SrcPort: 1, DstPort: 2, Proto: 17}
	first := m.Lookup(tuple)
	for i := 0; i < 100; i++ {
		if m.Lookup(tuple) != first {
			t.Fatal("same flow mapped differently")
		}
	}
}

func TestMaglevForwardRewrites(t *testing.T) {
	names, addrs := backends(3)
	m, _ := NewMaglev(names, addrs, 4099)
	var clk hw.Clock
	frame := make([]byte, 128)
	n, _ := netproto.BuildUDP(frame, netproto.MAC{1}, netproto.MAC{2},
		netproto.IPv4{10, 1, 1, 1}, netproto.IPv4{192, 168, 1, 1}, 5555, 80, []byte("x"))
	if !m.Forward(&clk, frame[:n]) {
		t.Fatal("forward refused valid frame")
	}
	p, err := netproto.ParseUDP(frame[:n])
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range addrs {
		if p.DstIP == a {
			found = true
		}
	}
	if !found {
		t.Fatalf("dst %v not a backend", p.DstIP)
	}
	if err := netproto.VerifyIPv4Checksum(frame[:n]); err != nil {
		t.Fatal(err)
	}
	if clk.Cycles() == 0 {
		t.Fatal("forward charged nothing")
	}
	if m.Forward(&clk, []byte{1, 2, 3}) {
		t.Fatal("forward accepted garbage")
	}
}

func TestMaglevRejectsBadConfig(t *testing.T) {
	if _, err := NewMaglev(nil, nil, 0); err == nil {
		t.Fatal("empty backends accepted")
	}
	if _, err := NewMaglev([]string{"a"}, nil, 0); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestKVStoreSetGet(t *testing.T) {
	s, err := NewKVStore(1024, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	var clk hw.Clock
	key := []byte("key00001")
	val := []byte("value001")
	if !s.Set(&clk, key, val) {
		t.Fatal("set failed")
	}
	got, okk := s.Get(&clk, key)
	if !okk || string(got) != string(val) {
		t.Fatalf("get = %q ok=%v", got, okk)
	}
	if _, okk := s.Get(&clk, []byte("missing!")); okk {
		t.Fatal("missing key found")
	}
	// Overwrite.
	if !s.Set(&clk, key, []byte("value002")) {
		t.Fatal("overwrite failed")
	}
	got, _ = s.Get(&clk, key)
	if string(got) != "value002" {
		t.Fatal("overwrite lost")
	}
	if s.Used() != 1 {
		t.Fatalf("used = %d", s.Used())
	}
}

func TestKVStoreCollisionProbing(t *testing.T) {
	// A tiny table forces linear probing chains.
	s, _ := NewKVStore(8, 8, 8)
	var clk hw.Clock
	for i := 0; i < 8; i++ {
		key := []byte(fmt.Sprintf("key%05d", i))
		if !s.Set(&clk, key, []byte("vvvvvvvv")) {
			t.Fatalf("set %d failed", i)
		}
	}
	// Full table rejects new keys but still finds all existing ones.
	if s.Set(&clk, []byte("overflow"), []byte("vvvvvvvv")) {
		t.Fatal("overfull set succeeded")
	}
	for i := 0; i < 8; i++ {
		key := []byte(fmt.Sprintf("key%05d", i))
		if _, okk := s.Get(&clk, key); !okk {
			t.Fatalf("key %d lost", i)
		}
	}
}

func TestKVStoreWrongSizesRejected(t *testing.T) {
	s, _ := NewKVStore(64, 8, 8)
	var clk hw.Clock
	if s.Set(&clk, []byte("short"), []byte("12345678")) {
		t.Fatal("short key accepted")
	}
	if _, okk := s.Get(&clk, []byte("longer-than-eight")); okk {
		t.Fatal("long key accepted")
	}
}

func TestKVStoreServeWire(t *testing.T) {
	s, _ := NewKVStore(1024, 8, 8)
	var clk hw.Clock
	frame := make([]byte, 256)
	var req [64]byte
	n, _ := BuildKVRequest(req[:], KVSet, []byte("key00042"), []byte("hello!!!"))
	fn, _ := netproto.BuildUDP(frame, netproto.MAC{1}, netproto.MAC{2},
		netproto.IPv4{10, 0, 0, 1}, netproto.IPv4{10, 0, 0, 2}, 7, 11211, req[:n])
	if !s.Serve(&clk, frame[:fn]) {
		t.Fatal("set request refused")
	}
	p, _ := netproto.ParseUDP(frame[:fn])
	if p.Payload[0] != 1 {
		t.Fatal("set reply not OK")
	}
	// GET round trip.
	n, _ = BuildKVRequest(req[:], KVGet, []byte("key00042"), nil)
	fn, _ = netproto.BuildUDP(frame, netproto.MAC{1}, netproto.MAC{2},
		netproto.IPv4{10, 0, 0, 1}, netproto.IPv4{10, 0, 0, 2}, 7, 11211, req[:n])
	if !s.Serve(&clk, frame[:fn]) {
		t.Fatal("get request refused")
	}
	p, _ = netproto.ParseUDP(frame[:fn])
	if p.Payload[0] != 1 || string(p.Payload[1:9]) != "hello!!!" {
		t.Fatalf("get reply = %v", p.Payload[:9])
	}
	if s.Hits != 1 || s.Sets != 1 {
		t.Fatalf("stats hits=%d sets=%d", s.Hits, s.Sets)
	}
}

func TestKVStoreBigTableChargesMore(t *testing.T) {
	small, _ := NewKVStore(1024, 8, 8)
	big, _ := NewKVStore(8_000_000, 8, 8)
	var cs, cb hw.Clock
	key := []byte("key00001")
	small.Get(&cs, key)
	big.Get(&cb, key)
	if cb.Cycles() <= cs.Cycles() {
		t.Fatal("big table not more expensive per probe")
	}
}

func TestHttpdServe(t *testing.T) {
	h := NewHttpd(map[string][]byte{"/index.html": []byte("<html>hello</html>")})
	var clk hw.Clock
	frame := make([]byte, 512)
	req := []byte("GET /index.html HTTP/1.1\r\nHost: atmo\r\n\r\n")
	n, _ := netproto.BuildUDP(frame, netproto.MAC{1}, netproto.MAC{2},
		netproto.IPv4{10, 0, 0, 9}, netproto.IPv4{10, 0, 0, 1}, 40000, 80, req)
	if !h.Serve(&clk, frame[:n]) {
		t.Fatal("request refused")
	}
	p, _ := netproto.ParseUDP(frame[:n])
	if string(p.Payload[:15]) != "HTTP/1.1 200 OK" {
		t.Fatalf("response %q", p.Payload[:15])
	}
	if h.Served != 1 || h.Connections() != 1 {
		t.Fatalf("served=%d conns=%d", h.Served, h.Connections())
	}
	// 404 path.
	n, _ = netproto.BuildUDP(frame, netproto.MAC{1}, netproto.MAC{2},
		netproto.IPv4{10, 0, 0, 9}, netproto.IPv4{10, 0, 0, 1}, 40000, 80,
		[]byte("GET /missing HTTP/1.1\r\n\r\n"))
	if !h.Serve(&clk, frame[:n]) {
		t.Fatal("404 request refused")
	}
	p, _ = netproto.ParseUDP(frame[:n])
	if string(p.Payload[9:12]) != "404" {
		t.Fatalf("response %q", p.Payload[:20])
	}
	if h.NotFound != 1 {
		t.Fatal("404 not counted")
	}
	// Garbage dropped.
	if h.Serve(&clk, []byte{1, 2}) {
		t.Fatal("garbage served")
	}
}

func TestHttpdTracksConnections(t *testing.T) {
	h := NewHttpd(map[string][]byte{"/": []byte("x")})
	var clk hw.Clock
	frame := make([]byte, 256)
	for c := 0; c < 20; c++ {
		req := []byte("GET / HTTP/1.1\r\n\r\n")
		n, _ := netproto.BuildUDP(frame, netproto.MAC{1}, netproto.MAC{2},
			netproto.IPv4{10, 0, 0, 9}, netproto.IPv4{10, 0, 0, 1}, uint16(50000+c), 80, req)
		h.Serve(&clk, frame[:n])
	}
	if h.Connections() != 20 {
		t.Fatalf("connections = %d", h.Connections())
	}
}

func TestKVRequestEncoding(t *testing.T) {
	var buf [64]byte
	n, err := BuildKVRequest(buf[:], KVSet, []byte("kk"), []byte("vvv"))
	if err != nil {
		t.Fatal(err)
	}
	if buf[0] != KVSet || binary.LittleEndian.Uint16(buf[1:3]) != 2 {
		t.Fatal("header wrong")
	}
	if n != 3+2+2+3 {
		t.Fatalf("length %d", n)
	}
	if _, err := BuildKVRequest(buf[:4], KVSet, []byte("kk"), []byte("vvv")); err == nil {
		t.Fatal("overflow accepted")
	}
}

// TestKVServePayload pins the payload-level entry point the cluster's
// traced backends use: identical semantics and cycle charge to Serve,
// minus the UDP parse.
func TestKVServePayload(t *testing.T) {
	s, err := NewKVStore(64, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	clk := &hw.Clock{}
	key := []byte("k0000000")
	val := []byte("v0000000")

	var buf [64]byte
	n, err := BuildKVRequest(buf[:], KVSet, key, val)
	if err != nil {
		t.Fatal(err)
	}
	before := clk.Cycles()
	if !s.ServePayload(clk, buf[:n]) {
		t.Fatal("SET via ServePayload failed")
	}
	if buf[0] != 1 {
		t.Fatalf("SET status = %d", buf[0])
	}
	if clk.Cycles()-before < ServeCycles {
		t.Fatal("ServePayload did not charge the protocol overhead")
	}

	n, err = BuildKVRequest(buf[:], KVGet, key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !s.ServePayload(clk, buf[:n]) {
		t.Fatal("GET via ServePayload failed")
	}
	if buf[0] != 1 || string(buf[1:9]) != string(val) {
		t.Fatalf("GET reply = % x", buf[:9])
	}

	// Truncated payloads are rejected, not served.
	if s.ServePayload(clk, buf[:2]) {
		t.Fatal("truncated payload was served")
	}
}
