package apps

import (
	"fmt"

	"atmosphere/internal/netproto"
)

// WrkClient is the wrk substitute for the httpd evaluation (§6.6): it
// opens N concurrent TCP-lite connections to the server, pipelines one
// request per connection round-robin, and consumes responses off the
// transmit path. It implements nic.FrameSource, so it plugs into the
// device model exactly where Pktgen does.
type WrkClient struct {
	srvMAC, cliMAC netproto.MAC
	srvIP, cliIP   netproto.IPv4
	request        []byte

	conns []wrkConn
	next  int
	frame [2048]byte

	// Retry policy (SetRetryPolicy); nil now disables it entirely.
	now         func() uint64
	deadline    uint64
	backoffBase uint64
	backoffCap  uint64
	budget      int

	Sent, Responses, Handshakes uint64
	Retries, Timeouts, GaveUp   uint64
}

// WrkStats is the client-side request accounting a chaos run reports.
type WrkStats struct {
	Sent, Responses, Handshakes uint64
	Retries, Timeouts, GaveUp   uint64
}

// Stats snapshots the client's counters.
func (w *WrkClient) Stats() WrkStats {
	return WrkStats{
		Sent: w.Sent, Responses: w.Responses, Handshakes: w.Handshakes,
		Retries: w.Retries, Timeouts: w.Timeouts, GaveUp: w.GaveUp,
	}
}

// SetRetryPolicy arms per-request deadlines: a connection whose SYN or
// request has seen no reply for deadline cycles times out, backs off
// (base doubling per attempt, capped), and retransmits, up to budget
// retries before the connection gives up permanently. now supplies the
// deterministic clock. With a policy armed, Next returns nil instead of
// a keep-alive ACK when no connection has anything useful to send — a
// dead server exhausts the budget instead of spinning.
func (w *WrkClient) SetRetryPolicy(now func() uint64, deadline, backoffBase, backoffCap uint64, budget int) {
	w.now = now
	w.deadline = deadline
	w.backoffBase = backoffBase
	w.backoffCap = backoffCap
	w.budget = budget
}

type wrkState uint8

const (
	wrkClosed wrkState = iota
	wrkSynSent
	wrkReady   // SYN|ACK seen; first data segment completes the handshake
	wrkIdle    // established, no request in flight
	wrkWaiting // request in flight
	wrkGaveUp  // retry budget exhausted; terminal
)

type wrkConn struct {
	state    wrkState
	port     uint16
	seq, ack uint32

	// Retry bookkeeping (active only with a policy armed).
	sentAt    uint64
	nextTryAt uint64 // nonzero: backing off until this time
	attempts  int
}

// NewWrkClient builds a client with n connections requesting path.
func NewWrkClient(n int, path string) *WrkClient {
	w := &WrkClient{
		srvMAC: netproto.MAC{2, 0, 0, 0, 0, 2}, cliMAC: netproto.MAC{2, 0, 0, 0, 0, 9},
		srvIP: netproto.IPv4{192, 168, 1, 1}, cliIP: netproto.IPv4{10, 0, 0, 9},
		request: []byte(fmt.Sprintf("GET %s HTTP/1.1\r\nHost: atmo\r\nUser-Agent: wrk\r\n\r\n", path)),
	}
	for i := 0; i < n; i++ {
		w.conns = append(w.conns, wrkConn{state: wrkClosed, port: uint16(40000 + i), seq: uint32(1000 * (i + 1))})
	}
	return w
}

// Next emits the next client segment (nic.FrameSource). Connections
// progress round-robin: SYN when closed, a request when ready or idle,
// and a bare keep-alive ACK when everything is waiting (the server
// charges real work for those too, as real servers do).
func (w *WrkClient) Next() []byte {
	for scan := 0; scan < len(w.conns); scan++ {
		c := &w.conns[w.next]
		w.next = (w.next + 1) % len(w.conns)
		switch c.state {
		case wrkClosed:
			n, err := netproto.BuildTCP(w.frame[:], w.cliMAC, w.srvMAC, w.cliIP, w.srvIP,
				c.port, 80, c.seq, 0, netproto.TCPSyn, nil)
			if err != nil {
				panic(err)
			}
			c.state = wrkSynSent
			if w.now != nil {
				c.sentAt = w.now()
			}
			w.Sent++
			return w.frame[:n]
		case wrkReady, wrkIdle:
			flags := uint8(netproto.TCPAck | netproto.TCPPsh)
			n, err := netproto.BuildTCP(w.frame[:], w.cliMAC, w.srvMAC, w.cliIP, w.srvIP,
				c.port, 80, c.seq, c.ack, flags, w.request)
			if err != nil {
				panic(err)
			}
			c.seq += uint32(len(w.request))
			c.state = wrkWaiting
			if w.now != nil {
				c.sentAt = w.now()
			}
			w.Sent++
			return w.frame[:n]
		case wrkSynSent, wrkWaiting:
			if f := w.retry(c); f != nil {
				return f
			}
		}
	}
	if w.now != nil {
		// Policy armed: nothing useful to send right now — every
		// connection is backing off, mid-flight, or has given up.
		return nil
	}
	// Every connection is mid-flight: emit a bare ACK on the last one.
	c := &w.conns[w.next]
	n, err := netproto.BuildTCP(w.frame[:], w.cliMAC, w.srvMAC, w.cliIP, w.srvIP,
		c.port, 80, c.seq, c.ack, netproto.TCPAck, nil)
	if err != nil {
		panic(err)
	}
	w.Sent++
	return w.frame[:n]
}

// retry runs the deadline/backoff state machine for an in-flight
// connection and returns a retransmitted frame when one is due.
func (w *WrkClient) retry(c *wrkConn) []byte {
	if w.now == nil {
		return nil
	}
	t := w.now()
	if c.nextTryAt != 0 {
		if t < c.nextTryAt {
			return nil
		}
		// Backoff elapsed: retransmit the outstanding segment.
		c.nextTryAt = 0
		c.sentAt = t
		w.Retries++
		w.Sent++
		var n int
		var err error
		if c.state == wrkSynSent {
			n, err = netproto.BuildTCP(w.frame[:], w.cliMAC, w.srvMAC, w.cliIP, w.srvIP,
				c.port, 80, c.seq, 0, netproto.TCPSyn, nil)
		} else {
			n, err = netproto.BuildTCP(w.frame[:], w.cliMAC, w.srvMAC, w.cliIP, w.srvIP,
				c.port, 80, c.seq-uint32(len(w.request)), c.ack, netproto.TCPAck|netproto.TCPPsh, w.request)
		}
		if err != nil {
			panic(err)
		}
		return w.frame[:n]
	}
	if t-c.sentAt < w.deadline {
		return nil
	}
	w.Timeouts++
	if c.attempts >= w.budget {
		w.GaveUp++
		c.state = wrkGaveUp
		return nil
	}
	c.attempts++
	backoff := w.backoffBase << (c.attempts - 1)
	if backoff > w.backoffCap {
		backoff = w.backoffCap
	}
	c.nextTryAt = t + backoff
	return nil
}

// Consume processes one server->client frame (wired to the device's
// TxSink).
func (w *WrkClient) Consume(frame []byte) {
	p, err := netproto.ParseTCP(frame)
	if err != nil {
		return
	}
	for i := range w.conns {
		c := &w.conns[i]
		if c.port != p.DstPort {
			continue
		}
		switch {
		case p.Flags&netproto.TCPSyn != 0 && p.Flags&netproto.TCPAck != 0:
			if c.state == wrkSynSent {
				c.seq++
				c.ack = p.Seq + 1
				c.state = wrkReady
				c.attempts = 0
				c.nextTryAt = 0
				w.Handshakes++
			}
		case len(p.Payload) > 0:
			if c.state == wrkWaiting {
				c.ack = p.Seq + uint32(len(p.Payload))
				c.state = wrkIdle
				c.attempts = 0
				c.nextTryAt = 0
				w.Responses++
			}
		}
		return
	}
}
