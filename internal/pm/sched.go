package pm

import (
	"fmt"

	"atmosphere/internal/hw"
)

// Scheduler is Atmosphere's per-core round-robin scheduler. A thread is
// affine to one core (chosen from its container's CPU reservation at
// creation); each core has a FIFO run queue plus a current thread. The
// kernel runs under a big lock, so the scheduler needs no internal
// locking (§3).
type Scheduler struct {
	queues  [][]Ptr
	current []Ptr // 0 = core idle

	// stealing enables deterministic work stealing: a core whose queue
	// runs empty takes the tail of the longest other queue instead of
	// idling (EnableWorkStealing).
	stealing bool
	steals   uint64

	// stealSeeded switches victim selection from longest-queue to a
	// seeded pseudo-random pick among the non-empty queues
	// (SetStealSeed). Schedule exploration uses this to cover migration
	// interleavings the fixed policy never produces.
	stealSeeded bool
	stealSeed   uint64

	// obs, when non-nil (SetSchedObserver), receives ready→running
	// run-queue delays, steal provenance, and blocked-on edges. clock is
	// the manager clock the timestamps read; neither is ever charged, so
	// attaching an observer cannot move a cycle.
	obs   SchedObserver
	clock *hw.Clock
}

// SchedObserver receives scheduler events for contention attribution
// (internal/obs/contend). Implementations only record — they must not
// charge cycles or mutate scheduler state. All timestamps are manager
// clock readings.
type SchedObserver interface {
	// RunqDelay reports one ready→running transition: the thread of
	// container cntr waited delay cycles on core's run queue.
	RunqDelay(core int, cntr Ptr, delay, now uint64)
	// Steal reports one work-stealing migration: thief took thrd (of
	// container cntr) from victim's queue.
	Steal(thief, victim int, thrd, cntr Ptr, now uint64)
	// Blocked reports a thread of container cntr blocking on object on
	// (the endpoint of an IPC rendezvous).
	Blocked(thrd, cntr, on Ptr, now uint64)
}

// SetSchedObserver attaches (or, with nil, detaches) a scheduler
// observer. While attached, enqueue stamps each thread's ReadyAt so the
// ready→running delay is exact; detached, nothing is stamped and the
// scheduler behaves bit-identically to an unobserved one.
func (m *ProcessManager) SetSchedObserver(o SchedObserver) {
	m.sched.obs = o
	m.sched.clock = m.clock
}

func newScheduler(cores int) *Scheduler {
	if cores < 1 {
		panic("pm: scheduler needs at least one core")
	}
	return &Scheduler{
		queues:  make([][]Ptr, cores),
		current: make([]Ptr, cores),
	}
}

// Cores returns the number of cores.
func (s *Scheduler) Cores() int { return len(s.queues) }

// Current returns the thread running on core (0 if idle).
func (s *Scheduler) Current(core int) Ptr { return s.current[core] }

// Queue returns a copy of core's run queue (for invariant checks).
func (s *Scheduler) Queue(core int) []Ptr {
	return append([]Ptr(nil), s.queues[core]...)
}

// enqueue appends a runnable thread to its core's queue.
func (s *Scheduler) enqueue(t *Thread) {
	if t.State != ThreadRunnable {
		panic(fmt.Sprintf("pm: enqueueing %v thread %#x", t.State, t.Ptr))
	}
	if s.obs != nil {
		t.ReadyAt = s.clock.Cycles()
	}
	s.queues[t.Core] = append(s.queues[t.Core], t.Ptr)
}

// noteRun reports a ready→running transition to the observer. Threads
// enqueued before the observer attached carry no stamp and are skipped;
// the stamp is consumed so a later re-dispatch cannot double-report.
func (s *Scheduler) noteRun(t *Thread, core int) {
	if s.obs == nil || t.ReadyAt == 0 {
		return
	}
	now := s.clock.Cycles()
	delay := uint64(0)
	if now > t.ReadyAt {
		delay = now - t.ReadyAt
	}
	t.ReadyAt = 0
	s.obs.RunqDelay(core, t.OwningCntr, delay, now)
}

// remove deletes a thread from wherever the scheduler holds it.
func (s *Scheduler) remove(t *Thread) {
	q := s.queues[t.Core]
	for i, p := range q {
		if p == t.Ptr {
			s.queues[t.Core] = append(q[:i], q[i+1:]...)
			break
		}
	}
	if s.current[t.Core] == t.Ptr {
		s.current[t.Core] = 0
	}
}

// PickNext pops the head of core's queue and makes it current. The
// previously current thread, if still running, is requeued (round
// robin). Returns the new current thread or 0 if the core idles.
func (m *ProcessManager) PickNext(core int) Ptr {
	s := m.sched
	m.clock.Charge(hw.CostSchedPick)
	if cur := s.current[core]; cur != 0 {
		t := m.Thrd(cur)
		if t.State == ThreadRunning {
			t.State = ThreadRunnable
			s.enqueue(t)
		}
		s.current[core] = 0
	}
	if len(s.queues[core]) == 0 {
		if s.stealing {
			return m.trySteal(core)
		}
		return 0
	}
	next := s.queues[core][0]
	s.queues[core] = s.queues[core][1:]
	t := m.Thrd(next)
	t.State = ThreadRunning
	s.current[core] = next
	s.noteRun(t, core)
	return next
}

// EnableWorkStealing lets an idle core migrate runnable threads from
// other cores' queues instead of idling. The policy is deterministic —
// victim and candidate selection are pure functions of the queue state,
// no randomization — so traces stay reproducible.
func (m *ProcessManager) EnableWorkStealing() { m.sched.stealing = true }

// Steals reports how many threads have been migrated by work stealing.
func (m *ProcessManager) Steals() uint64 { return m.sched.steals }

// SetStealSeed arms seeded victim selection for work stealing: instead
// of always raiding the longest queue, each steal attempt picks a
// victim among the non-empty queues via a splitmix64 stream. The policy
// stays a pure function of (seed, steal-attempt order), so traces
// remain reproducible per seed.
func (m *ProcessManager) SetStealSeed(seed uint64) {
	m.sched.stealSeeded = true
	m.sched.stealSeed = seed
}

// nextStealRand steps the scheduler's splitmix64 stream.
func (s *Scheduler) nextStealRand() uint64 {
	s.stealSeed += 0x9e3779b97f4a7c15
	z := s.stealSeed
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// trySteal migrates a thread onto idle core: the victim is the core
// with the longest run queue (first such core in scan order on ties),
// the candidate the tail-most thread whose container reserves the
// thief's core. Tail-most is the classic choice — the coldest thread,
// the one whose cache working set costs least to move; the migration
// itself is priced at CostSchedSteal. Returns 0 when every queue is
// empty or the chosen victim holds no migratable thread (one victim
// per attempt keeps the policy simple and the scan bounded).
func (m *ProcessManager) trySteal(core int) Ptr {
	s := m.sched
	victim := -1
	if s.stealSeeded {
		// Seeded mode: pick uniformly among the non-empty queues.
		var cands []int
		for c := range s.queues {
			if c != core && len(s.queues[c]) > 0 {
				cands = append(cands, c)
			}
		}
		if len(cands) > 0 {
			victim = cands[int(s.nextStealRand()%uint64(len(cands)))]
		}
	} else {
		best := 0
		for c := range s.queues {
			if c == core {
				continue
			}
			if n := len(s.queues[c]); n > best {
				best, victim = n, c
			}
		}
	}
	if victim < 0 {
		return 0
	}
	q := s.queues[victim]
	for i := len(q) - 1; i >= 0; i-- {
		t := m.Thrd(q[i])
		if !containsInt(m.Cntr(t.OwningCntr).CPUs, core) {
			continue // container does not reserve the thief's core
		}
		s.queues[victim] = append(q[:i], q[i+1:]...)
		t.Core = core
		t.State = ThreadRunning
		s.current[core] = t.Ptr
		s.steals++
		m.clock.Charge(hw.CostSchedSteal)
		if s.obs != nil {
			s.obs.Steal(core, victim, t.Ptr, t.OwningCntr, s.clock.Cycles())
		}
		s.noteRun(t, core)
		return t.Ptr
	}
	return 0
}

// Dispatch makes a specific runnable thread current on its core,
// requeueing whatever ran there. Tests and the syscall layer use it to
// drive a chosen thread (the simulation's stand-in for timer ticks).
func (m *ProcessManager) Dispatch(thrd Ptr) error {
	t := m.Thrd(thrd)
	if t.State == ThreadRunning {
		return nil
	}
	if t.State != ThreadRunnable {
		return fmt.Errorf("pm: dispatch of %v thread %#x", t.State, thrd)
	}
	s := m.sched
	core := t.Core
	if cur := s.current[core]; cur != 0 {
		ct := m.Thrd(cur)
		ct.State = ThreadRunnable
		s.current[core] = 0
		s.enqueue(ct)
	}
	// Unlink from the queue and make current.
	s.remove(t)
	t.State = ThreadRunning
	s.current[core] = thrd
	m.clock.Charge(hw.CostContextSwitch)
	s.noteRun(t, core)
	return nil
}

// DirectSwitch hands the core to a runnable thread without going through
// the run queue — the IPC fastpath handoff (the caller must have already
// blocked or otherwise vacated the core).
func (m *ProcessManager) DirectSwitch(thrd Ptr) {
	t := m.Thrd(thrd)
	if t.State != ThreadRunnable {
		panic(fmt.Sprintf("pm: direct switch to %v thread %#x", t.State, thrd))
	}
	s := m.sched
	s.remove(t)
	if cur := s.current[t.Core]; cur != 0 {
		ct := m.Thrd(cur)
		ct.State = ThreadRunnable
		s.current[t.Core] = 0
		s.enqueue(ct)
	}
	t.State = ThreadRunning
	s.current[t.Core] = thrd
	m.clock.Charge(hw.CostDirectSwitch)
	s.noteRun(t, t.Core)
}

// BlockCurrent transitions a running thread into an IPC-blocked state and
// removes it from its core.
func (m *ProcessManager) BlockCurrent(thrd Ptr, state ThreadState) {
	if state != ThreadBlockedSend && state != ThreadBlockedRecv {
		panic(fmt.Sprintf("pm: invalid blocked state %v", state))
	}
	t := m.Thrd(thrd)
	s := m.sched
	if s.current[t.Core] == thrd {
		s.current[t.Core] = 0
	} else {
		s.remove(t) // blocking a runnable (not yet dispatched) thread
	}
	t.State = state
	if s.obs != nil {
		// The syscall layer fills IPC.WaitingOn before blocking, so the
		// blocked-on edge names the endpoint of the rendezvous.
		s.obs.Blocked(thrd, t.OwningCntr, t.IPC.WaitingOn, s.clock.Cycles())
	}
}

// Wake makes a blocked thread runnable and enqueues it, delivering err as
// its syscall completion status.
func (m *ProcessManager) Wake(thrd Ptr, err error) {
	t := m.Thrd(thrd)
	if t.State != ThreadBlockedSend && t.State != ThreadBlockedRecv {
		panic(fmt.Sprintf("pm: waking %v thread %#x", t.State, thrd))
	}
	t.State = ThreadRunnable
	t.IPC.Err = err
	m.sched.enqueue(t)
}

// MarkExited transitions a thread to exited and removes it from the
// scheduler. The thread object itself is freed by FreeThread.
func (m *ProcessManager) MarkExited(thrd Ptr) {
	t := m.Thrd(thrd)
	m.sched.remove(t)
	t.State = ThreadExited
}
