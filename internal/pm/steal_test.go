package pm

import (
	"testing"

	"atmosphere/internal/hw"
)

// An idle core steals the tail of the longest queue — deterministically,
// respecting container CPU reservations, and charging CostSchedSteal.
func TestWorkStealing(t *testing.T) {
	m := newPM(t, 128, 4)
	proc, err := m.NewProcess(m.RootContainer, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Three threads affine to core 0; cores 1-3 start empty.
	var ts []Ptr
	for i := 0; i < 3; i++ {
		th, err := m.NewThread(proc, 0)
		if err != nil {
			t.Fatal(err)
		}
		ts = append(ts, th)
	}

	// Without stealing, core 1 idles.
	if got := m.PickNext(1); got != 0 {
		t.Fatalf("core 1 picked %#x with stealing disabled", got)
	}

	m.EnableWorkStealing()
	before := m.Clock().Cycles()
	got := m.PickNext(1)
	if got != ts[2] {
		t.Fatalf("core 1 stole %#x, want tail thread %#x", got, ts[2])
	}
	// The migration itself plus the pick; object-lookup touches may add
	// a few cycles on top.
	if d := m.Clock().Cycles() - before; d < hw.CostSchedPick+hw.CostSchedSteal {
		t.Fatalf("steal charged %d cycles, want >= %d", d, hw.CostSchedPick+hw.CostSchedSteal)
	}
	st := m.Thrd(got)
	if st.Core != 1 || st.State != ThreadRunning {
		t.Fatalf("stolen thread = core %d, %v", st.Core, st.State)
	}
	if m.Steals() != 1 {
		t.Fatalf("steals = %d", m.Steals())
	}
	// Victim queue shrank by exactly the stolen thread.
	q := m.Sched().Queue(0)
	if len(q) != 2 || q[0] != ts[0] || q[1] != ts[1] {
		t.Fatalf("victim queue = %v", q)
	}
}

// A thread whose container does not reserve the thief's core cannot be
// migrated.
func TestWorkStealingHonorsCPUReservation(t *testing.T) {
	m := newPM(t, 128, 2)
	// A child container pinned to core 0 only.
	pinned, err := m.NewContainer(m.RootContainer, 20, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	proc, err := m.NewProcess(pinned, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.NewThread(proc, 0); err != nil {
		t.Fatal(err)
	}
	m.EnableWorkStealing()
	if got := m.PickNext(1); got != 0 {
		t.Fatalf("core 1 stole pinned thread %#x", got)
	}
	if m.Steals() != 0 {
		t.Fatalf("steals = %d, want 0", m.Steals())
	}
}
