package pm

import (
	"errors"
	"fmt"

	"atmosphere/internal/hw"
	"atmosphere/internal/mem"
	"atmosphere/internal/pt"
)

// Process manager errors.
var (
	ErrNoPermission  = errors.New("pm: no tracked permission for pointer")
	ErrQuotaExceeded = errors.New("pm: container memory quota exceeded")
	ErrBadCPU        = errors.New("pm: CPU not reserved by container")
	ErrBusy          = errors.New("pm: object still referenced")
)

// ProcessManager owns every container, process, thread, and endpoint in
// the system. The four permission maps are the flat permission storage of
// Listing 2: holding an object pointer grants nothing; the authority to
// dereference lives here, at the top level of the subsystem.
type ProcessManager struct {
	alloc *mem.Allocator
	clock *hw.Clock

	RootContainer Ptr

	CntrPerms map[Ptr]*Container
	ProcPerms map[Ptr]*Process
	ThrdPerms map[Ptr]*Thread
	EdptPerms map[Ptr]*Endpoint

	// OnEndpointFree, when set, runs on an endpoint about to be destroyed
	// by EndpointDecRef. The kernel installs it to release the page
	// references of buffered asynchronous messages — references the
	// manager cannot drop itself (they live in the allocator and the
	// cycle ledger, above this package).
	OnEndpointFree func(*Endpoint)

	sched *Scheduler
}

// New creates a process manager with a root container spanning all of
// the machine's cores and holding the given page quota.
func New(alloc *mem.Allocator, clock *hw.Clock, cores int, rootQuota uint64) (*ProcessManager, error) {
	m := &ProcessManager{
		alloc:     alloc,
		clock:     clock,
		CntrPerms: make(map[Ptr]*Container),
		ProcPerms: make(map[Ptr]*Process),
		ThrdPerms: make(map[Ptr]*Thread),
		EdptPerms: make(map[Ptr]*Endpoint),
		sched:     newScheduler(cores),
	}
	page, err := alloc.AllocPage4K(mem.OwnerProcessMgr)
	if err != nil {
		return nil, err
	}
	cpus := make([]int, cores)
	for i := range cpus {
		cpus[i] = i
	}
	root := &Container{
		Ptr:          page,
		QuotaPages:   rootQuota,
		UsedPages:    1, // its own object page
		CPUs:         cpus,
		Procs:        make(map[Ptr]struct{}),
		OwnedThreads: make(map[Ptr]struct{}),
		Subtree:      make(map[Ptr]struct{}),
	}
	m.CntrPerms[page] = root
	m.RootContainer = page
	return m, nil
}

// Alloc returns the underlying page allocator.
func (m *ProcessManager) Alloc() *mem.Allocator { return m.alloc }

// Clock returns the cycle clock the manager charges.
func (m *ProcessManager) Clock() *hw.Clock { return m.clock }

// Sched returns the scheduler.
func (m *ProcessManager) Sched() *Scheduler { return m.sched }

// --- permission-checked dereference ----------------------------------------

// Cntr dereferences a container pointer; it panics if no permission is
// held — the analogue of Verus rejecting the access statically.
func (m *ProcessManager) Cntr(p Ptr) *Container {
	c, ok := m.CntrPerms[p]
	if !ok {
		panic(fmt.Sprintf("pm: dereference of container %#x without permission", p))
	}
	m.clock.Charge(hw.CostCacheTouch)
	return c
}

// Proc dereferences a process pointer.
func (m *ProcessManager) Proc(p Ptr) *Process {
	pr, ok := m.ProcPerms[p]
	if !ok {
		panic(fmt.Sprintf("pm: dereference of process %#x without permission", p))
	}
	m.clock.Charge(hw.CostCacheTouch)
	return pr
}

// Thrd dereferences a thread pointer.
func (m *ProcessManager) Thrd(p Ptr) *Thread {
	t, ok := m.ThrdPerms[p]
	if !ok {
		panic(fmt.Sprintf("pm: dereference of thread %#x without permission", p))
	}
	m.clock.Charge(hw.CostCacheTouch)
	return t
}

// Edpt dereferences an endpoint pointer.
func (m *ProcessManager) Edpt(p Ptr) *Endpoint {
	e, ok := m.EdptPerms[p]
	if !ok {
		panic(fmt.Sprintf("pm: dereference of endpoint %#x without permission", p))
	}
	m.clock.Charge(hw.CostCacheTouch)
	return e
}

// TryCntr is the non-panicking dereference used on syscall argument
// validation paths, where a bad pointer is a user error, not a kernel
// invariant violation.
func (m *ProcessManager) TryCntr(p Ptr) (*Container, bool) {
	c, ok := m.CntrPerms[p]
	return c, ok
}

// TryProc is the non-panicking process dereference.
func (m *ProcessManager) TryProc(p Ptr) (*Process, bool) {
	pr, ok := m.ProcPerms[p]
	return pr, ok
}

// TryThrd is the non-panicking thread dereference.
func (m *ProcessManager) TryThrd(p Ptr) (*Thread, bool) {
	t, ok := m.ThrdPerms[p]
	return t, ok
}

// TryEdpt is the non-panicking endpoint dereference.
func (m *ProcessManager) TryEdpt(p Ptr) (*Endpoint, bool) {
	e, ok := m.EdptPerms[p]
	return e, ok
}

// --- quota accounting -------------------------------------------------------

// ChargePages charges n pages against the container's quota.
func (m *ProcessManager) ChargePages(cntr Ptr, n uint64) error {
	c := m.Cntr(cntr)
	if c.UsedPages+n > c.QuotaPages {
		return fmt.Errorf("%w: container %#x used %d + %d > quota %d",
			ErrQuotaExceeded, cntr, c.UsedPages, n, c.QuotaPages)
	}
	c.UsedPages += n
	return nil
}

// CreditPages returns n pages to the container's quota.
func (m *ProcessManager) CreditPages(cntr Ptr, n uint64) {
	c := m.Cntr(cntr)
	if c.UsedPages < n {
		panic(fmt.Sprintf("pm: crediting %d pages to container %#x with only %d used", n, cntr, c.UsedPages))
	}
	c.UsedPages -= n
}

// --- object allocation -------------------------------------------------------

// allocObjectPage allocates the backing page for a kernel object and
// charges the container.
func (m *ProcessManager) allocObjectPage(cntr Ptr) (Ptr, error) {
	if err := m.ChargePages(cntr, 1); err != nil {
		return 0, err
	}
	page, err := m.alloc.AllocPage4K(mem.OwnerProcessMgr)
	if err != nil {
		m.CreditPages(cntr, 1)
		return 0, err
	}
	return page, nil
}

// freeObjectPage releases an object's backing page and credits the
// container.
func (m *ProcessManager) freeObjectPage(cntr, page Ptr) {
	if err := m.alloc.FreePage(page); err != nil {
		panic(fmt.Sprintf("pm: freeing object page %#x: %v", page, err))
	}
	m.CreditPages(cntr, 1)
}

// NewProcess creates a process in cntr as a child of parentProc
// (parentProc may be 0 for a container's first process). The process's
// page-table root node is charged to the container too.
func (m *ProcessManager) NewProcess(cntr, parentProc Ptr) (Ptr, error) {
	c := m.Cntr(cntr)
	// One page for the process object, one for the PML4.
	if err := m.ChargePages(cntr, 2); err != nil {
		return 0, err
	}
	page, err := m.alloc.AllocPage4K(mem.OwnerProcessMgr)
	if err != nil {
		m.CreditPages(cntr, 2)
		return 0, err
	}
	table, err := pt.New(m.alloc, m.clock)
	if err != nil {
		m.freeObjectPageNoCredit(page)
		m.CreditPages(cntr, 2)
		return 0, err
	}
	p := &Process{Ptr: page, Owner: cntr, Parent: parentProc, PageTable: table}
	m.ProcPerms[page] = p
	c.Procs[page] = struct{}{}
	if parentProc != 0 {
		pp := m.Proc(parentProc)
		pp.Children = append(pp.Children, page)
	}
	return page, nil
}

func (m *ProcessManager) freeObjectPageNoCredit(page Ptr) {
	if err := m.alloc.FreePage(page); err != nil {
		panic(err)
	}
}

// NewThread creates a thread in proc affine to core. The core must be in
// the owning container's reservation.
func (m *ProcessManager) NewThread(proc Ptr, core int) (Ptr, error) {
	p := m.Proc(proc)
	c := m.Cntr(p.Owner)
	if !containsInt(c.CPUs, core) {
		return 0, fmt.Errorf("%w: core %d not in container %#x", ErrBadCPU, core, p.Owner)
	}
	page, err := m.allocObjectPage(p.Owner)
	if err != nil {
		return 0, err
	}
	t := &Thread{Ptr: page, OwningProc: proc, OwningCntr: p.Owner, State: ThreadRunnable, Core: core}
	t.IPC.RecvEdptSlot = -1
	m.ThrdPerms[page] = t
	p.Threads = append(p.Threads, page)
	c.OwnedThreads[page] = struct{}{}
	m.sched.enqueue(t)
	return page, nil
}

// NewEndpoint creates an endpoint charged to cntr with an initial
// reference count of refs (one per descriptor slot the caller will
// install).
func (m *ProcessManager) NewEndpoint(cntr Ptr, refs int) (Ptr, error) {
	page, err := m.allocObjectPage(cntr)
	if err != nil {
		return 0, err
	}
	e := &Endpoint{Ptr: page, RefCount: refs, OwnerCntr: cntr}
	m.EdptPerms[page] = e
	return page, nil
}

// EndpointIncRef adds descriptor references to an endpoint.
func (m *ProcessManager) EndpointIncRef(edpt Ptr, n int) {
	m.Edpt(edpt).RefCount += n
}

// EndpointDecRef drops a descriptor reference; at zero the endpoint is
// destroyed and its page returned to its owner's quota. The endpoint
// queue must be empty at zero (blocked threads each hold a descriptor
// reference, so this holds by construction).
func (m *ProcessManager) EndpointDecRef(edpt Ptr) error {
	e := m.Edpt(edpt)
	e.RefCount--
	if e.RefCount > 0 {
		return nil
	}
	if len(e.Queue) != 0 {
		return fmt.Errorf("%w: endpoint %#x freed with %d queued threads", ErrBusy, edpt, len(e.Queue))
	}
	if m.OnEndpointFree != nil {
		m.OnEndpointFree(e)
	}
	delete(m.EdptPerms, edpt)
	m.freeObjectPage(e.OwnerCntr, edpt)
	return nil
}

// FreeThread removes an exited thread: descriptor references are dropped,
// the thread leaves its process, container, and scheduler, and its page
// returns to the container.
func (m *ProcessManager) FreeThread(thrd Ptr) error {
	t := m.Thrd(thrd)
	p := m.Proc(t.OwningProc)
	c := m.Cntr(t.OwningCntr)
	m.sched.remove(t)
	for i, e := range t.Endpoints {
		if e != NoEndpoint {
			t.Endpoints[i] = NoEndpoint
			if err := m.EndpointDecRef(e); err != nil {
				return err
			}
		}
	}
	p.Threads = removePtr(p.Threads, thrd)
	delete(c.OwnedThreads, thrd)
	delete(m.ThrdPerms, thrd)
	m.freeObjectPage(t.OwningCntr, thrd)
	return nil
}

// FreeProcess removes a process with no threads and no children. Its
// address space must already be empty; the page table is destroyed here
// and its node pages credited back.
func (m *ProcessManager) FreeProcess(proc Ptr) error {
	p := m.Proc(proc)
	if len(p.Threads) != 0 || len(p.Children) != 0 {
		return fmt.Errorf("%w: process %#x has %d threads, %d children",
			ErrBusy, proc, len(p.Threads), len(p.Children))
	}
	c := m.Cntr(p.Owner)
	nodes := p.PageTable.PageClosure().Len()
	if err := p.PageTable.Destroy(); err != nil {
		return err
	}
	m.CreditPages(p.Owner, uint64(nodes))
	if p.Parent != 0 {
		if pp, ok := m.TryProc(p.Parent); ok {
			pp.Children = removePtr(pp.Children, proc)
		}
	}
	delete(c.Procs, proc)
	delete(m.ProcPerms, proc)
	m.freeObjectPage(p.Owner, proc)
	return nil
}

func removePtr(s []Ptr, p Ptr) []Ptr {
	for i, v := range s {
		if v == p {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
