package pm

import (
	"fmt"

	"atmosphere/internal/mem"
)

// Container tree operations (§3, §4.1). Every mutation maintains the
// ghost Path and Subtree of the affected containers eagerly, the way
// Atmosphere's proofs update ghost state inside the executable functions;
// internal/verify re-derives both from the raw parent/children pointers
// and checks they agree (the non-recursive resolve_path_wf of §4.1).

// NewContainer creates a child of parent with the given quota carved out
// of the parent's reservation and a CPU set that must be a subset of the
// parent's. The child's own object page is paid from the child's quota
// (so quota must be at least 1).
func (m *ProcessManager) NewContainer(parent Ptr, quota uint64, cpus []int) (Ptr, error) {
	pc := m.Cntr(parent)
	if quota < 1 {
		return 0, fmt.Errorf("%w: child quota must cover the container object", ErrQuotaExceeded)
	}
	for _, cpu := range cpus {
		if !containsInt(pc.CPUs, cpu) {
			return 0, fmt.Errorf("%w: core %d not reserved by parent %#x", ErrBadCPU, cpu, parent)
		}
	}
	// Carve the child's quota out of the parent's.
	if err := m.ChargePages(parent, quota); err != nil {
		return 0, err
	}
	page, err := m.alloc.AllocPage4K(mem.OwnerProcessMgr)
	if err != nil {
		m.CreditPages(parent, quota)
		return 0, err
	}
	child := &Container{
		Ptr:          page,
		Parent:       parent,
		Depth:        pc.Depth + 1,
		QuotaPages:   quota,
		UsedPages:    1, // its own page
		CPUs:         append([]int(nil), cpus...),
		Procs:        make(map[Ptr]struct{}),
		OwnedThreads: make(map[Ptr]struct{}),
		Subtree:      make(map[Ptr]struct{}),
	}
	// Ghost path: parent's path plus the parent itself (Listing 2).
	child.Path = append(append([]Ptr(nil), pc.Path...), parent)
	m.CntrPerms[page] = child
	pc.Children = append(pc.Children, page)
	// Extend the subtree ghost of every direct and indirect parent —
	// the new_container_ensures() postcondition (Listing 3).
	for _, anc := range child.Path {
		m.Cntr(anc).Subtree[page] = struct{}{}
	}
	return page, nil
}

// UnlinkContainer detaches an empty container from the tree and releases
// its page, crediting the carved quota back to the parent. The container
// must have no processes and no children.
func (m *ProcessManager) UnlinkContainer(cntr Ptr) error {
	c := m.Cntr(cntr)
	if len(c.Procs) != 0 || len(c.Children) != 0 {
		return fmt.Errorf("%w: container %#x has %d procs, %d children",
			ErrBusy, cntr, len(c.Procs), len(c.Children))
	}
	if c.Parent == 0 {
		return fmt.Errorf("pm: cannot remove the root container")
	}
	parent := m.Cntr(c.Parent)
	parent.Children = removePtr(parent.Children, cntr)
	for _, anc := range c.Path {
		delete(m.Cntr(anc).Subtree, cntr)
	}
	delete(m.CntrPerms, cntr)
	if err := m.alloc.FreePage(cntr); err != nil {
		return err
	}
	// Return the whole carved reservation to the parent.
	m.CreditPages(c.Parent, c.QuotaPages)
	return nil
}

// IsAncestor reports whether anc is a strict ancestor of cntr, using the
// ghost subtree (O(1) via the flat view rather than a recursive walk).
func (m *ProcessManager) IsAncestor(anc, cntr Ptr) bool {
	a, ok := m.TryCntr(anc)
	if !ok {
		return false
	}
	return a.InSubtree(cntr)
}

// SubtreeOf returns cntr plus every reachable descendant — the C_A
// construction of §4.3, directly from the flat ghost state.
func (m *ProcessManager) SubtreeOf(cntr Ptr) map[Ptr]struct{} {
	c := m.Cntr(cntr)
	out := make(map[Ptr]struct{}, len(c.Subtree)+1)
	out[cntr] = struct{}{}
	for p := range c.Subtree {
		out[p] = struct{}{}
	}
	return out
}

// ThreadsOf returns every thread owned by cntr's subtree — the T_A
// construction of §4.3 (flat, non-recursive).
func (m *ProcessManager) ThreadsOf(cntr Ptr) map[Ptr]struct{} {
	out := make(map[Ptr]struct{})
	for cp := range m.SubtreeOf(cntr) {
		for t := range m.Cntr(cp).OwnedThreads {
			out[t] = struct{}{}
		}
	}
	return out
}

// ProcsOf returns every process in cntr's subtree — the P_A construction
// of §4.3.
func (m *ProcessManager) ProcsOf(cntr Ptr) map[Ptr]struct{} {
	out := make(map[Ptr]struct{})
	for cp := range m.SubtreeOf(cntr) {
		for p := range m.Cntr(cp).Procs {
			out[p] = struct{}{}
		}
	}
	return out
}

// ResolvePathRecursive recomputes a container's path by walking parent
// pointers — the recursive formulation the paper contrasts with flat
// storage (§4.1). It exists for the ablation benchmark and as an oracle
// for the ghost Path.
func (m *ProcessManager) ResolvePathRecursive(cntr Ptr) []Ptr {
	var rec func(p Ptr) []Ptr
	rec = func(p Ptr) []Ptr {
		c := m.Cntr(p)
		if c.Parent == 0 {
			return nil
		}
		return append(rec(c.Parent), c.Parent)
	}
	return rec(cntr)
}

// SubtreeRecursive recomputes the reachable-children set by recursive
// descent through the children lists (the unbounded recursive spec the
// flat design avoids).
func (m *ProcessManager) SubtreeRecursive(cntr Ptr) map[Ptr]struct{} {
	out := make(map[Ptr]struct{})
	var rec func(p Ptr)
	rec = func(p Ptr) {
		for _, ch := range m.Cntr(p).Children {
			out[ch] = struct{}{}
			rec(ch)
		}
	}
	rec(cntr)
	return out
}
