package pm

import "testing"

// stealScript builds four queues on core 0..2 (core 3 empty) and
// records which threads core 3 steals over a run; used to compare
// seeded victim policies.
func stealTrace(t *testing.T, seed uint64, seeded bool) []Ptr {
	t.Helper()
	m := newPM(t, 256, 4)
	proc, err := m.NewProcess(m.RootContainer, 0)
	if err != nil {
		t.Fatal(err)
	}
	for core := 0; core < 3; core++ {
		for i := 0; i < 4; i++ {
			if _, err := m.NewThread(proc, core); err != nil {
				t.Fatal(err)
			}
		}
	}
	m.EnableWorkStealing()
	if seeded {
		m.SetStealSeed(seed)
	}
	var got []Ptr
	for i := 0; i < 8; i++ {
		th := m.PickNext(3)
		if th == 0 {
			break
		}
		got = append(got, th)
	}
	return got
}

// Seeded victim selection is a pure function of the seed: identical
// traces for identical seeds, and some seed deviates from the default
// longest-queue policy (otherwise the knob perturbs nothing).
func TestSetStealSeedDeterministic(t *testing.T) {
	a := stealTrace(t, 11, true)
	b := stealTrace(t, 11, true)
	if len(a) == 0 {
		t.Fatal("no steals happened")
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at steal %d: %#x vs %#x", i, a[i], b[i])
		}
	}
	base := stealTrace(t, 0, false)
	deviates := false
	for seed := uint64(1); seed <= 8 && !deviates; seed++ {
		s := stealTrace(t, seed, true)
		if len(s) != len(base) {
			deviates = true
			break
		}
		for i := range s {
			if s[i] != base[i] {
				deviates = true
				break
			}
		}
	}
	if !deviates {
		t.Fatal("no seed in 1..8 deviates from the longest-queue policy")
	}
}

// Without SetStealSeed the longest-queue policy is untouched: byte-for-
// byte the same victims as before the knob existed.
func TestStealDefaultPolicyUnchanged(t *testing.T) {
	a := stealTrace(t, 0, false)
	b := stealTrace(t, 0, false)
	if len(a) == 0 {
		t.Fatal("no steals happened")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("default policy nondeterministic at steal %d", i)
		}
	}
}
