// Package pm implements Atmosphere's process manager: the subsystem that
// owns containers, processes, threads, endpoints, and the scheduler
// (§3, §4.1).
//
// The package is the reference implementation of the paper's two central
// design choices:
//
//   - Pointer-centric layout. Kernel objects live one-per-4KiB-page and
//     refer to each other by raw page address (Ptr), exactly as an unsafe
//     C kernel would — children lists, parent back pointers, queue links
//     are all Ptr values.
//
//   - Flat permission storage (Listing 2). The authority to dereference
//     any object pointer is held in flat maps at the top of the
//     ProcessManager (CntrPerms, ProcPerms, ThrdPerms, EdptPerms), never
//     inside the objects themselves. Dereference goes through these maps
//     and fails loudly for a dangling pointer — the executable analogue
//     of Verus rejecting an access without a tracked PointsTo permission.
//
// Structural ghost state (each container's Path and Subtree) is maintained
// eagerly on every tree mutation, and internal/verify checks the
// non-recursive global invariants of §4.1 against it.
package pm

import (
	"atmosphere/internal/hw"
	"atmosphere/internal/iommu"
	"atmosphere/internal/pt"
)

// Ptr is a kernel object pointer: the physical address of the 4 KiB page
// backing the object. The null pointer 0 is never a valid object.
type Ptr = hw.PhysAddr

// MaxEndpoints is the size of each thread's endpoint descriptor table.
const MaxEndpoints = 16

// NoEndpoint marks an empty endpoint descriptor slot.
const NoEndpoint Ptr = 0

// ThreadState enumerates thread lifecycle states.
type ThreadState uint8

// Thread states.
const (
	ThreadRunnable ThreadState = iota
	ThreadRunning
	ThreadBlockedSend // queued on an endpoint waiting for a receiver
	ThreadBlockedRecv // queued on an endpoint waiting for a sender
	ThreadExited
)

// String implements fmt.Stringer.
func (s ThreadState) String() string {
	switch s {
	case ThreadRunnable:
		return "runnable"
	case ThreadRunning:
		return "running"
	case ThreadBlockedSend:
		return "blocked-send"
	case ThreadBlockedRecv:
		return "blocked-recv"
	case ThreadExited:
		return "exited"
	}
	return "invalid"
}

// Container is a group of processes with a guaranteed memory quota and
// CPU reservation (§3). Containers form a single tree rooted at the
// process manager's RootContainer.
type Container struct {
	Ptr    Ptr
	Parent Ptr // 0 for the root container

	// Children holds direct children in creation order (the paper's
	// StaticList<CtnrPtr>).
	Children []Ptr

	// Depth is the distance from the root (root = 0).
	Depth int

	// Path is ghost state: the container pointers from the root down to
	// this container's parent, in order (Listing 2). len(Path) == Depth.
	Path []Ptr

	// Subtree is ghost state: every container reachable below this one
	// (not including itself).
	Subtree map[Ptr]struct{}

	// QuotaPages is the container's memory reservation in 4 KiB pages;
	// UsedPages counts every page charged to it: user mappings, kernel
	// object pages, page-table nodes, and the quotas carved out for
	// child containers.
	QuotaPages uint64
	UsedPages  uint64

	// CPUs is the set of cores the container's threads may run on.
	CPUs []int

	// Procs holds every process directly inside this container.
	Procs map[Ptr]struct{}

	// OwnedThreads is ghost state: every thread whose process is in this
	// container (the owned_thrds of §4.3).
	OwnedThreads map[Ptr]struct{}
}

// InSubtree reports whether c's subtree (not including c) contains p.
func (c *Container) InSubtree(p Ptr) bool {
	_, ok := c.Subtree[p]
	return ok
}

// Process is one address space plus a group of threads inside a
// container. Processes form a per-container tree for parent-child
// termination rights (§3).
type Process struct {
	Ptr       Ptr
	Owner     Ptr // owning container
	Parent    Ptr // parent process; 0 for a container's first process
	Children  []Ptr
	Threads   []Ptr
	PageTable *pt.PageTable

	// IOMMUDomain is the process's DMA domain, 0 if none.
	IOMMUDomain iommu.DomainID
}

// Thread is one execution context.
type Thread struct {
	Ptr        Ptr
	OwningProc Ptr
	// OwningCntr is ghost state denormalizing the thread's container for
	// the flat non-interference specs (§4.3).
	OwningCntr Ptr

	State ThreadState
	// Core is the core the thread is affine to.
	Core int

	// Endpoints is the thread's endpoint descriptor table; entries hold
	// endpoint object pointers or NoEndpoint.
	Endpoints [MaxEndpoints]Ptr

	// IPC rendezvous state while blocked (see kernel package).
	IPC IPCState

	// ReadyAt is observability-only state: the manager clock reading at
	// which the thread last became runnable, stamped only while a
	// SchedObserver is attached (zero otherwise, and reset once the
	// ready→running delay is reported). Never read by kernel logic.
	ReadyAt uint64
}

// IPCState carries a blocked thread's pending transfer.
type IPCState struct {
	// Msg is the message a blocked sender is waiting to deliver, or the
	// message delivered to a woken receiver.
	Msg Msg
	// RecvVA is where a blocked receiver wants an incoming page mapped.
	RecvVA hw.VirtAddr
	// RecvEdptSlot is where a blocked receiver wants an incoming
	// endpoint descriptor installed (-1: any free slot).
	RecvEdptSlot int
	// Err is the status delivered when the thread is woken.
	Err error
	// WaitingOn is the endpoint the thread is queued on while blocked
	// (0 otherwise).
	WaitingOn Ptr
}

// Msg is an IPC message: scalar registers plus optional capabilities —
// a page reference, an endpoint reference, and an IOMMU identifier (§3).
type Msg struct {
	Regs [4]uint64

	// HasPage indicates a page transfer; Page is the physical page
	// (resolved from the sender's address space by the kernel).
	HasPage bool
	Page    hw.PhysAddr
	// PageSize is the granularity of the transferred page.
	PageSize hw.PageSize
	// PagePerm is the permission the receiver's mapping gets.
	PagePerm pt.Perm

	// HasEndpoint indicates an endpoint transfer; Endpoint is the
	// endpoint object pointer.
	HasEndpoint bool
	Endpoint    Ptr

	// IOMMUDomain passes a DMA domain identifier (0 = none).
	IOMMUDomain iommu.DomainID
}

// Endpoint is an IPC rendezvous object. Threads block on it in Queue;
// QueuedRecv says which direction the queued threads are waiting in
// (an endpoint queue is always homogeneous: all senders or all
// receivers).
type Endpoint struct {
	Ptr        Ptr
	Queue      []Ptr
	QueuedRecv bool
	// RefCount counts descriptor-table slots across all threads that
	// reference this endpoint; the endpoint dies when it reaches zero.
	RefCount int
	// OwnerCntr is the container charged for the endpoint's page.
	OwnerCntr Ptr

	// Buffer holds asynchronously sent messages (send_async) awaiting a
	// receiver: bounded by MaxEndpointBuffer, drained by receives ahead
	// of the blocked-sender queue, FIFO.
	Buffer []Msg
}

// MaxEndpointBuffer bounds an endpoint's asynchronous message buffer;
// send_async returns EAGAIN when it is full.
const MaxEndpointBuffer = 64
