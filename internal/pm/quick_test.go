package pm

import (
	"testing"
	"testing/quick"

	"atmosphere/internal/hw"
	"atmosphere/internal/mem"
)

// Property-based tests over the tree and quota machinery.

// TestPropChargeCredit: charging then crediting any amount that fits is
// the identity on UsedPages.
func TestPropChargeCredit(t *testing.T) {
	m := newPM(t, 256, 1)
	f := func(n uint16) bool {
		c := m.Cntr(m.RootContainer)
		amount := uint64(n) % (c.QuotaPages - c.UsedPages + 1)
		before := c.UsedPages
		if err := m.ChargePages(m.RootContainer, amount); err != nil {
			return false
		}
		m.CreditPages(m.RootContainer, amount)
		return m.Cntr(m.RootContainer).UsedPages == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropTreeGhostsAfterRandomOps: after any sequence of container
// creations and removals, the ghost path/subtree state matches the
// recursive recomputation at every node.
func TestPropTreeGhostsAfterRandomOps(t *testing.T) {
	m := newPM(t, 2048, 1)
	r := hw.NewRand(555)
	var live []Ptr
	for step := 0; step < 300; step++ {
		if r.Bool() || len(live) == 0 {
			parent := m.RootContainer
			if len(live) > 0 && r.Bool() {
				parent = live[r.Intn(len(live))]
			}
			if c, err := m.NewContainer(parent, uint64(2+r.Intn(6)), []int{0}); err == nil {
				live = append(live, c)
			}
		} else {
			i := r.Intn(len(live))
			c := m.Cntr(live[i])
			if len(c.Children) == 0 && len(c.Procs) == 0 {
				if err := m.UnlinkContainer(live[i]); err != nil {
					t.Fatal(err)
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
	}
	for ptr, c := range m.CntrPerms {
		rec := m.ResolvePathRecursive(ptr)
		if len(rec) != len(c.Path) {
			t.Fatalf("path length mismatch at %#x", ptr)
		}
		for i := range rec {
			if rec[i] != c.Path[i] {
				t.Fatalf("path mismatch at %#x[%d]", ptr, i)
			}
		}
		sub := m.SubtreeRecursive(ptr)
		if len(sub) != len(c.Subtree) {
			t.Fatalf("subtree size mismatch at %#x: %d vs %d", ptr, len(sub), len(c.Subtree))
		}
		for s := range sub {
			if _, ok := c.Subtree[s]; !ok {
				t.Fatalf("subtree member mismatch at %#x", ptr)
			}
		}
	}
}

// TestPropSchedulerConservation: any interleaving of dispatch, block,
// wake, and pick never loses or duplicates a thread.
func TestPropSchedulerConservation(t *testing.T) {
	m := newPM(t, 512, 2)
	p, _ := m.NewProcess(m.RootContainer, 0)
	var threads []Ptr
	for i := 0; i < 8; i++ {
		tid, err := m.NewThread(p, i%2)
		if err != nil {
			t.Fatal(err)
		}
		threads = append(threads, tid)
	}
	e, _ := m.NewEndpoint(m.RootContainer, 1)
	_ = e
	r := hw.NewRand(777)
	for step := 0; step < 2000; step++ {
		tid := threads[r.Intn(len(threads))]
		th := m.Thrd(tid)
		switch r.Intn(4) {
		case 0:
			if th.State == ThreadRunnable {
				if err := m.Dispatch(tid); err != nil {
					t.Fatal(err)
				}
			}
		case 1:
			if th.State == ThreadRunning || th.State == ThreadRunnable {
				m.BlockCurrent(tid, ThreadBlockedRecv)
			}
		case 2:
			if th.State == ThreadBlockedRecv {
				m.Wake(tid, nil)
			}
		case 3:
			m.PickNext(r.Intn(2))
		}
		// Conservation: every thread is in exactly one place.
		placed := map[Ptr]int{}
		for core := 0; core < 2; core++ {
			for _, q := range m.Sched().Queue(core) {
				placed[q]++
			}
			if cur := m.Sched().Current(core); cur != 0 {
				placed[cur]++
			}
		}
		for _, tid := range threads {
			th := m.Thrd(tid)
			want := 0
			if th.State == ThreadRunnable || th.State == ThreadRunning {
				want = 1
			}
			if placed[tid] != want {
				t.Fatalf("step %d: thread %#x (%v) placed %d times, want %d",
					step, tid, th.State, placed[tid], want)
			}
		}
	}
}

// TestPropObjectPagesMatchPermissions: the allocator's view of
// process-manager pages always equals the union of the permission maps.
func TestPropObjectPagesMatchPermissions(t *testing.T) {
	m := newPM(t, 1024, 1)
	r := hw.NewRand(999)
	var procs, threads []Ptr
	for step := 0; step < 400; step++ {
		switch r.Intn(4) {
		case 0:
			if p, err := m.NewProcess(m.RootContainer, 0); err == nil {
				procs = append(procs, p)
			}
		case 1:
			if len(procs) > 0 {
				if tid, err := m.NewThread(procs[r.Intn(len(procs))], 0); err == nil {
					threads = append(threads, tid)
				}
			}
		case 2:
			if len(threads) > 0 {
				i := r.Intn(len(threads))
				m.MarkExited(threads[i])
				if err := m.FreeThread(threads[i]); err != nil {
					t.Fatal(err)
				}
				threads = append(threads[:i], threads[i+1:]...)
			}
		case 3:
			// Free a childless, threadless process.
			for i, p := range procs {
				pr := m.Proc(p)
				if len(pr.Threads) == 0 && len(pr.Children) == 0 {
					if err := m.FreeProcess(p); err != nil {
						t.Fatal(err)
					}
					procs = append(procs[:i], procs[i+1:]...)
					break
				}
			}
		}
	}
	owned := m.Alloc().AllocatedTo(mem.OwnerProcessMgr)
	objPages := mem.NewPageSet()
	for p := range m.CntrPerms {
		objPages.Insert(p)
	}
	for p := range m.ProcPerms {
		objPages.Insert(p)
	}
	for p := range m.ThrdPerms {
		objPages.Insert(p)
	}
	for p := range m.EdptPerms {
		objPages.Insert(p)
	}
	if !owned.Equal(objPages) {
		t.Fatalf("allocator says %d PM pages, permissions say %d", owned.Len(), objPages.Len())
	}
}
