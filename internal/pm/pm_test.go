package pm

import (
	"errors"
	"testing"

	"atmosphere/internal/hw"
	"atmosphere/internal/mem"
)

func newPM(t *testing.T, frames int, cores int) *ProcessManager {
	t.Helper()
	phys := hw.NewPhysMem(frames)
	clk := &hw.Clock{}
	alloc := mem.NewAllocator(phys, clk, 1)
	m, err := New(alloc, clk, cores, uint64(frames-1))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRootContainer(t *testing.T) {
	m := newPM(t, 64, 2)
	root := m.Cntr(m.RootContainer)
	if root.Parent != 0 || root.Depth != 0 || len(root.Path) != 0 {
		t.Fatalf("root shape wrong: %+v", root)
	}
	if root.UsedPages != 1 {
		t.Fatalf("root used = %d, want 1 (its own page)", root.UsedPages)
	}
	if len(root.CPUs) != 2 {
		t.Fatalf("root cpus = %v", root.CPUs)
	}
}

func TestNewContainerGhostState(t *testing.T) {
	m := newPM(t, 128, 2)
	a, err := m.NewContainer(m.RootContainer, 20, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.NewContainer(a, 10, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	cb := m.Cntr(b)
	if cb.Depth != 2 || len(cb.Path) != 2 || cb.Path[0] != m.RootContainer || cb.Path[1] != a {
		t.Fatalf("path wrong: %+v", cb)
	}
	root := m.Cntr(m.RootContainer)
	if !root.InSubtree(a) || !root.InSubtree(b) {
		t.Fatal("root subtree missing descendants")
	}
	if !m.Cntr(a).InSubtree(b) || m.Cntr(a).InSubtree(a) {
		t.Fatal("a subtree wrong")
	}
	// Ghost path must agree with the recursive oracle.
	rec := m.ResolvePathRecursive(b)
	if len(rec) != 2 || rec[0] != m.RootContainer || rec[1] != a {
		t.Fatalf("recursive path oracle = %v", rec)
	}
	if got := m.SubtreeRecursive(m.RootContainer); len(got) != len(root.Subtree) {
		t.Fatalf("recursive subtree %d != ghost %d", len(got), len(root.Subtree))
	}
}

func TestQuotaCarving(t *testing.T) {
	m := newPM(t, 128, 1)
	rootUsed := m.Cntr(m.RootContainer).UsedPages
	a, err := m.NewContainer(m.RootContainer, 20, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	root := m.Cntr(m.RootContainer)
	if root.UsedPages != rootUsed+20 {
		t.Fatalf("parent used = %d, want %d", root.UsedPages, rootUsed+20)
	}
	ca := m.Cntr(a)
	if ca.QuotaPages != 20 || ca.UsedPages != 1 {
		t.Fatalf("child accounting: %+v", ca)
	}
	// Exceeding the carved quota from within the child must fail.
	if err := m.ChargePages(a, 20); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("overcharge: %v", err)
	}
	// Child creation beyond the parent quota must fail.
	if _, err := m.NewContainer(m.RootContainer, 1<<40, []int{0}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatal("huge child quota accepted")
	}
	// Zero-quota child cannot pay for its own page.
	if _, err := m.NewContainer(m.RootContainer, 0, []int{0}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatal("zero-quota child accepted")
	}
}

func TestCPUSubsetEnforced(t *testing.T) {
	m := newPM(t, 128, 4)
	a, _ := m.NewContainer(m.RootContainer, 30, []int{1, 2})
	if _, err := m.NewContainer(a, 5, []int{3}); !errors.Is(err, ErrBadCPU) {
		t.Fatal("child got a CPU the parent does not reserve")
	}
	if _, err := m.NewContainer(a, 5, []int{2}); err != nil {
		t.Fatal(err)
	}
}

func TestUnlinkContainer(t *testing.T) {
	m := newPM(t, 128, 1)
	rootUsedBefore := m.Cntr(m.RootContainer).UsedPages
	a, _ := m.NewContainer(m.RootContainer, 20, []int{0})
	b, _ := m.NewContainer(a, 5, []int{0})
	if err := m.UnlinkContainer(a); !errors.Is(err, ErrBusy) {
		t.Fatal("unlinked container with children")
	}
	if err := m.UnlinkContainer(b); err != nil {
		t.Fatal(err)
	}
	if m.Cntr(a).InSubtree(b) || m.Cntr(m.RootContainer).InSubtree(b) {
		t.Fatal("subtree ghost not cleaned")
	}
	if err := m.UnlinkContainer(a); err != nil {
		t.Fatal(err)
	}
	if got := m.Cntr(m.RootContainer).UsedPages; got != rootUsedBefore {
		t.Fatalf("quota not returned: %d != %d", got, rootUsedBefore)
	}
	if _, ok := m.TryCntr(a); ok {
		t.Fatal("permission for removed container survived")
	}
}

func TestUnlinkRootRejected(t *testing.T) {
	m := newPM(t, 64, 1)
	if err := m.UnlinkContainer(m.RootContainer); err == nil {
		t.Fatal("root removal accepted")
	}
}

func TestProcessLifecycle(t *testing.T) {
	m := newPM(t, 128, 1)
	usedBefore := m.Cntr(m.RootContainer).UsedPages
	p1, err := m.NewProcess(m.RootContainer, 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.NewProcess(m.RootContainer, p1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Proc(p2).Parent != p1 || len(m.Proc(p1).Children) != 1 {
		t.Fatal("process tree links wrong")
	}
	// Process page + PML4 page each.
	if got := m.Cntr(m.RootContainer).UsedPages; got != usedBefore+4 {
		t.Fatalf("used = %d, want %d", got, usedBefore+4)
	}
	if err := m.FreeProcess(p1); !errors.Is(err, ErrBusy) {
		t.Fatal("freed process with children")
	}
	if err := m.FreeProcess(p2); err != nil {
		t.Fatal(err)
	}
	if err := m.FreeProcess(p1); err != nil {
		t.Fatal(err)
	}
	if got := m.Cntr(m.RootContainer).UsedPages; got != usedBefore {
		t.Fatalf("quota leaked: %d != %d", got, usedBefore)
	}
}

func TestThreadLifecycle(t *testing.T) {
	m := newPM(t, 128, 2)
	p, _ := m.NewProcess(m.RootContainer, 0)
	tid, err := m.NewThread(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	th := m.Thrd(tid)
	if th.OwningProc != p || th.OwningCntr != m.RootContainer || th.Core != 1 {
		t.Fatalf("thread shape: %+v", th)
	}
	if _, ok := m.Cntr(m.RootContainer).OwnedThreads[tid]; !ok {
		t.Fatal("ghost owned_thrds missing thread")
	}
	if q := m.Sched().Queue(1); len(q) != 1 || q[0] != tid {
		t.Fatalf("run queue = %v", q)
	}
	m.MarkExited(tid)
	if err := m.FreeThread(tid); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.TryThrd(tid); ok {
		t.Fatal("thread permission survived free")
	}
	if len(m.Cntr(m.RootContainer).OwnedThreads) != 0 {
		t.Fatal("owned_thrds not cleaned")
	}
}

func TestThreadBadCoreRejected(t *testing.T) {
	m := newPM(t, 128, 4)
	a, _ := m.NewContainer(m.RootContainer, 30, []int{0})
	p, _ := m.NewProcess(a, 0)
	if _, err := m.NewThread(p, 3); !errors.Is(err, ErrBadCPU) {
		t.Fatal("thread on unreserved core accepted")
	}
}

func TestEndpointRefCounting(t *testing.T) {
	m := newPM(t, 128, 1)
	usedBefore := m.Cntr(m.RootContainer).UsedPages
	e, err := m.NewEndpoint(m.RootContainer, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.EndpointIncRef(e, 1)
	if err := m.EndpointDecRef(e); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.TryEdpt(e); !ok {
		t.Fatal("endpoint died with refs outstanding")
	}
	if err := m.EndpointDecRef(e); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.TryEdpt(e); ok {
		t.Fatal("endpoint survived last decref")
	}
	if got := m.Cntr(m.RootContainer).UsedPages; got != usedBefore {
		t.Fatal("endpoint page not credited back")
	}
}

func TestDereferenceWithoutPermissionPanics(t *testing.T) {
	m := newPM(t, 64, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("dangling dereference did not panic")
		}
	}()
	m.Cntr(Ptr(0xdead000))
}

func TestSchedulerRoundRobin(t *testing.T) {
	m := newPM(t, 128, 1)
	p, _ := m.NewProcess(m.RootContainer, 0)
	t1, _ := m.NewThread(p, 0)
	t2, _ := m.NewThread(p, 0)
	t3, _ := m.NewThread(p, 0)
	order := []Ptr{
		m.PickNext(0), m.PickNext(0), m.PickNext(0),
		m.PickNext(0), m.PickNext(0), m.PickNext(0),
	}
	want := []Ptr{t1, t2, t3, t1, t2, t3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("round robin order %v, want %v", order, want)
		}
	}
}

func TestSchedulerBlockWake(t *testing.T) {
	m := newPM(t, 128, 1)
	p, _ := m.NewProcess(m.RootContainer, 0)
	t1, _ := m.NewThread(p, 0)
	t2, _ := m.NewThread(p, 0)
	if m.PickNext(0) != t1 {
		t.Fatal("t1 should run first")
	}
	m.BlockCurrent(t1, ThreadBlockedRecv)
	if m.Thrd(t1).State != ThreadBlockedRecv {
		t.Fatal("block did not transition state")
	}
	if m.PickNext(0) != t2 {
		t.Fatal("t2 should run after t1 blocks")
	}
	m.Wake(t1, nil)
	if m.Thrd(t1).State != ThreadRunnable {
		t.Fatal("wake did not transition state")
	}
	// t2 still running; next pick rotates to t1.
	if m.PickNext(0) != t1 {
		t.Fatal("woken thread should be schedulable")
	}
}

func TestDispatch(t *testing.T) {
	m := newPM(t, 128, 1)
	p, _ := m.NewProcess(m.RootContainer, 0)
	t1, _ := m.NewThread(p, 0)
	t2, _ := m.NewThread(p, 0)
	if err := m.Dispatch(t2); err != nil {
		t.Fatal(err)
	}
	if m.Sched().Current(0) != t2 || m.Thrd(t2).State != ThreadRunning {
		t.Fatal("dispatch failed")
	}
	if m.Thrd(t1).State != ThreadRunnable {
		t.Fatal("t1 state disturbed")
	}
	// Dispatching the running thread is a no-op.
	if err := m.Dispatch(t2); err != nil {
		t.Fatal(err)
	}
	m.BlockCurrent(t2, ThreadBlockedSend)
	if err := m.Dispatch(t2); err == nil {
		t.Fatal("dispatch of blocked thread accepted")
	}
}

func TestIsAncestorAndDomainConstructors(t *testing.T) {
	m := newPM(t, 256, 1)
	a, _ := m.NewContainer(m.RootContainer, 40, []int{0})
	b, _ := m.NewContainer(a, 20, []int{0})
	c, _ := m.NewContainer(b, 5, []int{0})
	if !m.IsAncestor(a, c) || m.IsAncestor(c, a) || m.IsAncestor(b, b) {
		t.Fatal("IsAncestor wrong")
	}
	pa, _ := m.NewProcess(a, 0)
	pb, _ := m.NewProcess(b, 0)
	ta, _ := m.NewThread(pa, 0)
	tb, _ := m.NewThread(pb, 0)
	threads := m.ThreadsOf(a)
	if len(threads) != 2 {
		t.Fatalf("ThreadsOf(a) = %d threads, want 2", len(threads))
	}
	if _, ok := threads[ta]; !ok {
		t.Fatal("direct thread missing")
	}
	if _, ok := threads[tb]; !ok {
		t.Fatal("subtree thread missing")
	}
	procs := m.ProcsOf(b)
	if len(procs) != 1 {
		t.Fatalf("ProcsOf(b) = %d", len(procs))
	}
	subtree := m.SubtreeOf(a)
	if len(subtree) != 3 { // a, b, c
		t.Fatalf("SubtreeOf(a) = %d", len(subtree))
	}
}

func TestFreeThreadDropsEndpointRefs(t *testing.T) {
	m := newPM(t, 128, 1)
	p, _ := m.NewProcess(m.RootContainer, 0)
	tid, _ := m.NewThread(p, 0)
	e, _ := m.NewEndpoint(m.RootContainer, 1)
	m.Thrd(tid).Endpoints[0] = e
	m.MarkExited(tid)
	if err := m.FreeThread(tid); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.TryEdpt(e); ok {
		t.Fatal("endpoint not destroyed when last descriptor died")
	}
}

func TestDeepTreeGhostConsistency(t *testing.T) {
	m := newPM(t, 1024, 1)
	cur := m.RootContainer
	quota := uint64(500)
	var chain []Ptr
	for i := 0; i < 12; i++ {
		child, err := m.NewContainer(cur, quota, []int{0})
		if err != nil {
			t.Fatal(err)
		}
		chain = append(chain, child)
		cur = child
		quota -= 40
	}
	leaf := m.Cntr(chain[len(chain)-1])
	if leaf.Depth != 12 || len(leaf.Path) != 12 {
		t.Fatalf("leaf depth %d path %d", leaf.Depth, len(leaf.Path))
	}
	// The §4.1 path-prefix property: for node n at depth d on c's path,
	// c.path[:d] == n.path.
	for d, n := range leaf.Path {
		np := m.Cntr(n).Path
		if len(np) != d {
			t.Fatalf("path length of ancestor at depth %d is %d", d, len(np))
		}
		for i := range np {
			if np[i] != leaf.Path[i] {
				t.Fatalf("path prefix mismatch at %d/%d", i, d)
			}
		}
	}
	// Ghost subtree equals recursive recomputation at every node.
	for _, c := range append([]Ptr{m.RootContainer}, chain...) {
		rec := m.SubtreeRecursive(c)
		ghost := m.Cntr(c).Subtree
		if len(rec) != len(ghost) {
			t.Fatalf("subtree mismatch at %#x: %d vs %d", c, len(rec), len(ghost))
		}
		for p := range rec {
			if _, ok := ghost[p]; !ok {
				t.Fatalf("subtree missing %#x", p)
			}
		}
	}
}
