package faults

import "testing"

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{Rules: []Rule{{Kind: KindCount, Rate: 0.5}}},
		{Rules: []Rule{{Kind: NvmeCmdError, Rate: 1.5}}},
		{Rules: []Rule{{Kind: NvmeCmdError, Rate: -0.1}}},
		{Rules: []Rule{{Kind: NvmeCmdError, Rate: 0.5, From: 100, Until: 50}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d validated but should not have", i)
		}
	}
	good := Plan{Rules: []Rule{{Kind: NvmeStall, Rate: 0.01, From: 0, Until: 0, Param: 1000}}}
	if err := good.Validate(); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	plan := Plan{Rules: []Rule{
		{Kind: NvmeCmdError, Rate: 0.1},
		{Kind: NicDMAFault, Rate: 0.05},
	}}
	run := func() ([2]uint64, uint64) {
		in, err := NewInjector(42, plan, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10000; i++ {
			in.Hit(NvmeCmdError)
			in.Hit(NicDMAFault)
		}
		return [2]uint64{in.Injected[NvmeCmdError], in.Injected[NicDMAFault]}, in.TraceHash()
	}
	c1, h1 := run()
	c2, h2 := run()
	if c1 != c2 || h1 != h2 {
		t.Fatalf("same seed diverged: %v/%#x vs %v/%#x", c1, h1, c2, h2)
	}
	if c1[0] == 0 || c1[1] == 0 {
		t.Fatalf("rates 0.1/0.05 over 10000 draws injected nothing: %v", c1)
	}
	// A different seed must (overwhelmingly) produce a different trace.
	in3, _ := NewInjector(43, plan, nil)
	for i := 0; i < 10000; i++ {
		in3.Hit(NvmeCmdError)
		in3.Hit(NicDMAFault)
	}
	if in3.TraceHash() == h1 {
		t.Fatal("different seeds produced identical trace hashes")
	}
}

func TestCycleWindows(t *testing.T) {
	var now uint64
	plan := Plan{Rules: []Rule{{Kind: AllocExhaust, Rate: 1, From: 100, Until: 200}}}
	in, err := NewInjector(7, plan, func() uint64 { return now })
	if err != nil {
		t.Fatal(err)
	}
	now = 50
	if in.Hit(AllocExhaust) {
		t.Fatal("fired before window")
	}
	now = 150
	if !in.Hit(AllocExhaust) {
		t.Fatal("did not fire inside window at rate 1")
	}
	now = 200
	if in.Hit(AllocExhaust) {
		t.Fatal("fired at window end (Until is exclusive)")
	}
}

func TestInactiveKindConsumesNoRandomness(t *testing.T) {
	plan := Plan{Rules: []Rule{{Kind: NvmeStall, Rate: 0.5, Param: 9}}}
	a, _ := NewInjector(5, plan, nil)
	b, _ := NewInjector(5, plan, nil)
	// a interleaves opportunities for an unarmed kind; the armed kind's
	// decisions must not shift.
	var seqA, seqB []bool
	for i := 0; i < 64; i++ {
		a.Hit(IRQDrop) // unarmed: no draw
		hit, param := a.Should(NvmeStall)
		if hit && param != 9 {
			t.Fatalf("param %d, want 9", param)
		}
		seqA = append(seqA, hit)
		hitB, _ := b.Should(NvmeStall)
		seqB = append(seqB, hitB)
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("unarmed opportunities perturbed the armed stream at %d", i)
		}
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Hit(NvmeCmdError) {
		t.Fatal("nil injector fired")
	}
	if in.TraceHash() != 0 || in.TraceLen() != 0 || in.InjectedTotal() != 0 {
		t.Fatal("nil injector reported nonzero state")
	}
}
