package faults

import (
	"strings"
	"testing"

	"atmosphere/internal/hw"
)

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{Rules: []Rule{{Kind: KindCount, Rate: 0.5}}},
		{Rules: []Rule{{Kind: Kind(-1), Rate: 0.5}}},
		{Rules: []Rule{{Kind: NvmeCmdError, Rate: 1.5}}},
		{Rules: []Rule{{Kind: NvmeCmdError, Rate: -0.1}}},
		{Rules: []Rule{{Kind: NvmeCmdError, Rate: 0.5, From: 100, Until: 50}}},
		// Rate and Period are mutually exclusive.
		{Rules: []Rule{{Kind: MachineKill, Rate: 0.5, Period: 100}}},
		// The zero-period rule: a machine/link kind that fires never.
		{Rules: []Rule{{Kind: MachineKill}}},
		{Rules: []Rule{{Kind: MachineStall, Param: 500}}},
		{Rules: []Rule{{Kind: LinkPartition, Target: 2}}},
		{Rules: []Rule{{Kind: LinkCorrupt, From: 10, Until: 20}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d validated but should not have", i)
		}
	}
	good := []Plan{
		{Rules: []Rule{{Kind: NvmeStall, Rate: 0.01, From: 0, Until: 0, Param: 1000}}},
		{Rules: []Rule{{Kind: MachineKill, Period: 1000, Target: 3}}},
		{Rules: []Rule{{Kind: MachineStall, Rate: 0.01, Param: 500}}},
		{Rules: []Rule{{Kind: LinkDelay, Period: 50, From: 100, Until: 900, Param: 40}}},
		// Non-cluster kinds may also be periodic.
		{Rules: []Rule{{Kind: NvmeCmdError, Period: 10}}},
		// A zero-rate rule for a non-cluster kind stays a valid no-op.
		{Rules: []Rule{{Kind: IRQDrop}}},
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("good plan %d rejected: %v", i, err)
		}
	}
}

func TestMachineKindNames(t *testing.T) {
	want := map[Kind]string{
		MachineKill:   "machine-kill",
		MachineStall:  "machine-stall",
		LinkPartition: "link-partition",
		LinkDelay:     "link-delay",
		LinkCorrupt:   "link-corrupt",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), name)
		}
	}
}

func TestPeriodicRule(t *testing.T) {
	var now uint64
	plan := Plan{Rules: []Rule{{Kind: MachineKill, Period: 100, Param: 7}}}
	in, err := NewInjector(1, plan, func() uint64 { return now })
	if err != nil {
		t.Fatal(err)
	}
	// Before the first boundary (From+Period = 100): never fires.
	for now = 0; now < 100; now += 10 {
		if hit, _ := in.ShouldFor(MachineKill, 1); hit {
			t.Fatalf("periodic rule fired at %d, before first boundary", now)
		}
	}
	now = 130 // late consult: one crossed boundary fires exactly once
	hit, param := in.ShouldFor(MachineKill, 1)
	if !hit || param != 7 {
		t.Fatalf("boundary 100 did not fire at consult 130 (hit=%v param=%d)", hit, param)
	}
	if hit, _ := in.ShouldFor(MachineKill, 2); hit {
		t.Fatal("boundary 100 fired twice")
	}
	now = 250 // boundary 200 crossed
	if hit, _ := in.ShouldFor(MachineKill, 1); !hit {
		t.Fatal("boundary 200 did not fire")
	}
	if in.Injected[MachineKill] != 2 {
		t.Fatalf("injected %d, want 2", in.Injected[MachineKill])
	}
}

func TestPeriodicRespectsWindow(t *testing.T) {
	var now uint64
	plan := Plan{Rules: []Rule{{Kind: LinkPartition, Period: 100, From: 0, Until: 150}}}
	in, err := NewInjector(1, plan, func() uint64 { return now })
	if err != nil {
		t.Fatal(err)
	}
	now = 120
	if hit, _ := in.ShouldFor(LinkPartition, 1); !hit {
		t.Fatal("boundary 100 inside window did not fire")
	}
	now = 220 // boundary 200 is past Until
	if hit, _ := in.ShouldFor(LinkPartition, 1); hit {
		t.Fatal("fired outside the [0,150) window")
	}
}

func TestTargetedRule(t *testing.T) {
	var now uint64
	plan := Plan{Rules: []Rule{{Kind: MachineStall, Period: 100, Target: 2, Param: 9}}}
	in, err := NewInjector(1, plan, func() uint64 { return now })
	if err != nil {
		t.Fatal(err)
	}
	now = 150
	if hit, _ := in.ShouldFor(MachineStall, 1); hit {
		t.Fatal("rule targeting 2 fired for target 1")
	}
	hit, param := in.ShouldFor(MachineStall, 2)
	if !hit || param != 9 {
		t.Fatalf("rule targeting 2 did not fire for target 2 (hit=%v param=%d)", hit, param)
	}
	// Periodic fires consume no randomness: the stream is untouched.
	if got, ref := in.rand.Uint64(), hw.NewRand(1).Uint64(); got != ref {
		t.Fatalf("periodic/targeted consults perturbed the random stream: %#x vs %#x", got, ref)
	}
}

func TestCountsIncludesMachineKinds(t *testing.T) {
	var now uint64
	plan := Plan{Rules: []Rule{
		{Kind: MachineKill, Period: 100},
		{Kind: LinkCorrupt, Rate: 1},
	}}
	in, err := NewInjector(1, plan, func() uint64 { return now })
	if err != nil {
		t.Fatal(err)
	}
	now = 150
	in.ShouldFor(MachineKill, 1)
	in.ShouldFor(MachineKill, 2)
	in.ShouldFor(LinkCorrupt, 1)
	s := in.Counts()
	for _, frag := range []string{"machine-kill=1/2", "link-corrupt=1/1"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Counts() = %q, missing %q", s, frag)
		}
	}
}

func TestDeterminism(t *testing.T) {
	plan := Plan{Rules: []Rule{
		{Kind: NvmeCmdError, Rate: 0.1},
		{Kind: NicDMAFault, Rate: 0.05},
	}}
	run := func() ([2]uint64, uint64) {
		in, err := NewInjector(42, plan, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10000; i++ {
			in.Hit(NvmeCmdError)
			in.Hit(NicDMAFault)
		}
		return [2]uint64{in.Injected[NvmeCmdError], in.Injected[NicDMAFault]}, in.TraceHash()
	}
	c1, h1 := run()
	c2, h2 := run()
	if c1 != c2 || h1 != h2 {
		t.Fatalf("same seed diverged: %v/%#x vs %v/%#x", c1, h1, c2, h2)
	}
	if c1[0] == 0 || c1[1] == 0 {
		t.Fatalf("rates 0.1/0.05 over 10000 draws injected nothing: %v", c1)
	}
	// A different seed must (overwhelmingly) produce a different trace.
	in3, _ := NewInjector(43, plan, nil)
	for i := 0; i < 10000; i++ {
		in3.Hit(NvmeCmdError)
		in3.Hit(NicDMAFault)
	}
	if in3.TraceHash() == h1 {
		t.Fatal("different seeds produced identical trace hashes")
	}
}

func TestCycleWindows(t *testing.T) {
	var now uint64
	plan := Plan{Rules: []Rule{{Kind: AllocExhaust, Rate: 1, From: 100, Until: 200}}}
	in, err := NewInjector(7, plan, func() uint64 { return now })
	if err != nil {
		t.Fatal(err)
	}
	now = 50
	if in.Hit(AllocExhaust) {
		t.Fatal("fired before window")
	}
	now = 150
	if !in.Hit(AllocExhaust) {
		t.Fatal("did not fire inside window at rate 1")
	}
	now = 200
	if in.Hit(AllocExhaust) {
		t.Fatal("fired at window end (Until is exclusive)")
	}
}

func TestInactiveKindConsumesNoRandomness(t *testing.T) {
	plan := Plan{Rules: []Rule{{Kind: NvmeStall, Rate: 0.5, Param: 9}}}
	a, _ := NewInjector(5, plan, nil)
	b, _ := NewInjector(5, plan, nil)
	// a interleaves opportunities for an unarmed kind; the armed kind's
	// decisions must not shift.
	var seqA, seqB []bool
	for i := 0; i < 64; i++ {
		a.Hit(IRQDrop) // unarmed: no draw
		hit, param := a.Should(NvmeStall)
		if hit && param != 9 {
			t.Fatalf("param %d, want 9", param)
		}
		seqA = append(seqA, hit)
		hitB, _ := b.Should(NvmeStall)
		seqB = append(seqB, hitB)
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("unarmed opportunities perturbed the armed stream at %d", i)
		}
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Hit(NvmeCmdError) {
		t.Fatal("nil injector fired")
	}
	if in.TraceHash() != 0 || in.TraceLen() != 0 || in.InjectedTotal() != 0 {
		t.Fatal("nil injector reported nonzero state")
	}
}
