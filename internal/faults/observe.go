package faults

import "atmosphere/internal/obs"

// Observability hooks. The injector sits outside any single core, so
// its events land on the machine-wide track (obs.MachinePID) with
// timestamps from its own time base (the machine's aggregate cycle
// counter in every real harness). Neither hook touches the random
// stream or the trace hash: attaching them cannot move a fault.

// SetTracer attaches a tracer (nil detaches): every injected fault
// emits one instant named after its kind, arg = the rule's Param.
func (in *Injector) SetTracer(t *obs.Tracer) {
	if in == nil {
		return
	}
	in.tr = t
	if t == nil {
		return
	}
	in.track = t.Track(obs.MachinePID, "machine", "faults")
	for k := Kind(0); k < KindCount; k++ {
		in.kindNames[k] = t.Name("fault." + k.String())
	}
}

// RegisterMetrics publishes the per-kind opportunity/injection counters
// as live gauges (nil registry is a no-op).
func (in *Injector) RegisterMetrics(r *obs.Registry) {
	if in == nil || r == nil {
		return
	}
	for k := Kind(0); k < KindCount; k++ {
		k := k
		r.Gauge("faults."+k.String()+".opportunities", func() uint64 { return in.Opportunities[k] })
		r.Gauge("faults."+k.String()+".injected", func() uint64 { return in.Injected[k] })
	}
}
