// Package faults is the deterministic fault-injection layer. The
// paper's core claim (§3, §4.3) is that the kernel's invariants survive
// arbitrary behavior from untrusted user-level drivers; this package
// manufactures that behavior on demand — NVMe command errors and
// completion stalls, NIC descriptor corruption and DMA faults, dropped
// and spurious interrupts, transient allocator exhaustion — so the rest
// of the repository can demonstrate it survives.
//
// Everything is deterministic: an Injector draws from a seeded hw.Rand,
// so the same seed and the same opportunity sequence reproduce the same
// fault trace bit for bit. Each injected fault is appended to a running
// FNV-1a trace hash; two runs agree iff their hashes agree.
package faults

import (
	"fmt"
	"strings"

	"atmosphere/internal/hw"
	"atmosphere/internal/obs"
)

// Kind enumerates the injectable fault kinds.
type Kind int

// Fault kinds. Each names the hook point that consults the injector.
const (
	// NvmeCmdError completes an NVMe command with a non-zero status
	// instead of touching the media (the device's "internal error").
	NvmeCmdError Kind = iota
	// NvmeStall withholds an NVMe completion for Param cycles; the
	// driver observes a command that does not complete within its
	// polling budget.
	NvmeStall
	// NicDescCorrupt delivers an RX descriptor with a corrupted length
	// field (zero) and no frame payload.
	NicDescCorrupt
	// NicDMAFault makes one NIC DMA access fault as if the IOMMU had
	// rejected the translation.
	NicDMAFault
	// IRQDrop swallows a raised interrupt before dispatch (a lost
	// edge).
	IRQDrop
	// IRQSpurious is an extra interrupt on a line nobody raised; the
	// harness uses it to exercise the kernel's spurious-IRQ path.
	IRQSpurious
	// AllocExhaust makes one allocator request fail transiently with
	// out-of-memory, exercising every caller's ENOMEM path.
	AllocExhaust

	// The machine- and link-granularity kinds below drive the cluster
	// simulation (internal/cluster): the "entity" consulted is a whole
	// simulated machine or inter-machine link, identified by the
	// 1-based target id the hook passes to ShouldFor. Plans arm them
	// either probabilistically (Rate) or on a deterministic schedule
	// (Period); a rule with neither fires never and is rejected by
	// Validate.

	// MachineKill powers a simulated machine off mid-run: its kernel
	// instance dies, in-flight frames addressed to it are lost, and the
	// cluster supervisor later respawns a fresh instance.
	MachineKill
	// MachineStall freezes a machine for Param cycles: it stays "alive"
	// but processes nothing, so health checks flap without a kill.
	MachineStall
	// LinkPartition makes a link drop every frame for Param cycles, in
	// both directions, including frames already in flight.
	LinkPartition
	// LinkDelay arms one-shot extra latency: the next frame sent on the
	// link is delayed by Param additional cycles.
	LinkDelay
	// LinkCorrupt corrupts the next frame sent on the link (flipped
	// bytes), exercising the receivers' malformed-frame paths.
	LinkCorrupt

	// KindCount is the number of fault kinds.
	KindCount
)

// clusterKind reports whether k is a machine- or link-granularity kind,
// which must be armed by Rate or Period (a silent no-op rule for a
// scheduled-chaos kind is almost certainly a plan bug).
func clusterKind(k Kind) bool { return k >= MachineKill && k <= LinkCorrupt }

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case NvmeCmdError:
		return "nvme-cmd-error"
	case NvmeStall:
		return "nvme-stall"
	case NicDescCorrupt:
		return "nic-desc-corrupt"
	case NicDMAFault:
		return "nic-dma-fault"
	case IRQDrop:
		return "irq-drop"
	case IRQSpurious:
		return "irq-spurious"
	case AllocExhaust:
		return "alloc-exhaust"
	case MachineKill:
		return "machine-kill"
	case MachineStall:
		return "machine-stall"
	case LinkPartition:
		return "link-partition"
	case LinkDelay:
		return "link-delay"
	case LinkCorrupt:
		return "link-corrupt"
	}
	return "fault?"
}

// Rule arms one fault kind: Rate is the per-opportunity injection
// probability, [From, Until) the cycle window in which the rule is
// active (Until == 0 means no upper bound), and Param a kind-specific
// magnitude (stall cycles for NvmeStall and MachineStall, partition
// cycles for LinkPartition, extra latency for LinkDelay).
//
// Period, when nonzero, replaces Rate with a deterministic schedule:
// the rule fires at the first opportunity at or after each of the
// cycle points From+Period, From+2·Period, … (still clipped by the
// [From, Until) window), consuming no randomness. Rate and Period are
// mutually exclusive.
//
// Target restricts the rule to one entity of a multi-entity hook — the
// 1-based machine or link id the hook passes to ShouldFor; 0 matches
// every target.
type Rule struct {
	Kind   Kind
	Rate   float64
	From   uint64
	Until  uint64
	Param  uint64
	Period uint64
	Target uint64
}

// Plan is a declarative fault plan: the set of armed rules. The zero
// Plan injects nothing.
type Plan struct {
	Rules []Rule
}

// Validate rejects malformed plans: rates outside [0,1], unknown
// kinds, inverted windows, rules arming both Rate and Period, and
// machine/link rules with neither (the zero-period rule — a scheduled
// chaos kind that fires never is a plan bug, not a no-op).
func (p Plan) Validate() error {
	for i, r := range p.Rules {
		if r.Kind < 0 || r.Kind >= KindCount {
			return fmt.Errorf("faults: rule %d: unknown kind %d", i, int(r.Kind))
		}
		if r.Rate < 0 || r.Rate > 1 {
			return fmt.Errorf("faults: rule %d: rate %v outside [0,1]", i, r.Rate)
		}
		if r.Until != 0 && r.Until <= r.From {
			return fmt.Errorf("faults: rule %d: empty window [%d,%d)", i, r.From, r.Until)
		}
		if r.Rate > 0 && r.Period > 0 {
			return fmt.Errorf("faults: rule %d: rate and period are mutually exclusive", i)
		}
		if clusterKind(r.Kind) && r.Rate == 0 && r.Period == 0 {
			return fmt.Errorf("faults: rule %d: %v rule with zero rate and zero period fires never", i, r.Kind)
		}
	}
	return nil
}

// String renders the plan for reports.
func (p Plan) String() string {
	if len(p.Rules) == 0 {
		return "none"
	}
	var b strings.Builder
	for i, r := range p.Rules {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%v@%g", r.Kind, r.Rate)
		if r.From != 0 || r.Until != 0 {
			fmt.Fprintf(&b, "[%d:%d)", r.From, r.Until)
		}
	}
	return b.String()
}

// Injector decides, deterministically, whether each fault opportunity
// fires. One injector serves the whole machine; hook points in the
// device models, the allocator, and the IRQ path consult it.
type Injector struct {
	rand *hw.Rand
	plan Plan
	// now supplies the cycle-window time base (typically the machine's
	// aggregate cycle counter).
	now func() uint64
	// nextAt is the next scheduled fire point per periodic rule
	// (parallel to plan.Rules; unused entries stay 0).
	nextAt []uint64

	// Opportunities and Injected count, per kind, how often a hook
	// consulted the injector and how often it fired.
	Opportunities [KindCount]uint64
	Injected      [KindCount]uint64

	// traceHash accumulates (kind, sequence, cycle) of every injected
	// fault; traceLen counts them.
	traceHash uint64
	traceLen  uint64

	// Tracing (observe.go): an instant per injected fault on the
	// machine-wide faults track. Never consulted for randomness, so
	// attaching a tracer cannot move the fault trace.
	tr        *obs.Tracer
	track     obs.TrackID
	kindNames [KindCount]obs.NameID
}

// NewInjector builds an injector for plan, drawing randomness from seed
// and reading the current cycle count from now (nil means a constant
// zero clock, which keeps only un-windowed rules active).
func NewInjector(seed uint64, plan Plan, now func() uint64) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if now == nil {
		now = func() uint64 { return 0 }
	}
	in := &Injector{
		rand:      hw.NewRand(seed),
		plan:      plan,
		now:       now,
		nextAt:    make([]uint64, len(plan.Rules)),
		traceHash: 14695981039346656037, // FNV-1a offset basis
	}
	for i, r := range plan.Rules {
		if r.Period > 0 {
			in.nextAt[i] = r.From + r.Period
		}
	}
	return in, nil
}

func (in *Injector) mix(w uint64) {
	for i := 0; i < 8; i++ {
		in.traceHash ^= (w >> (8 * i)) & 0xff
		in.traceHash *= 1099511628211 // FNV-1a prime
	}
}

// Should reports whether the fault opportunity of kind k fires, and the
// armed rule's Param. Exactly one random draw is consumed per
// opportunity with an active probabilistic rule; inactive kinds and
// periodic rules consume none, so a plan that never arms a kind leaves
// the random stream untouched by that hook.
func (in *Injector) Should(k Kind) (bool, uint64) {
	return in.ShouldFor(k, 0)
}

// ShouldFor is Should for multi-entity hooks: target is the 1-based
// machine or link id consulting the injector (0 for single-entity
// hooks). The first rule of kind k whose window is active and whose
// Target matches decides the opportunity — by one random draw
// (probabilistic rules) or by crossing its next scheduled fire point
// (periodic rules, no randomness consumed).
func (in *Injector) ShouldFor(k Kind, target uint64) (bool, uint64) {
	if in == nil {
		return false, 0
	}
	in.Opportunities[k]++
	t := in.now()
	for i := range in.plan.Rules {
		r := &in.plan.Rules[i]
		if r.Kind != k {
			continue
		}
		if t < r.From || (r.Until != 0 && t >= r.Until) {
			continue
		}
		if r.Target != 0 && target != 0 && r.Target != target {
			continue
		}
		if r.Period > 0 {
			if t < in.nextAt[i] {
				return false, 0
			}
			// Advance past every crossed point so one boundary fires at
			// most one opportunity, however late the hook consults.
			for in.nextAt[i] <= t {
				in.nextAt[i] += r.Period
			}
			in.fire(k, r)
			return true, r.Param
		}
		if r.Rate == 0 {
			return false, 0
		}
		if in.rand.Float64() >= r.Rate {
			return false, 0
		}
		in.fire(k, r)
		return true, r.Param
	}
	return false, 0
}

// fire records one injected fault on the counters, the trace hash, and
// the tracer.
func (in *Injector) fire(k Kind, r *Rule) {
	in.Injected[k]++
	in.traceLen++
	in.mix(uint64(k))
	in.mix(in.traceLen)
	in.mix(in.now())
	if in.tr != nil {
		in.tr.Instant(in.track, in.kindNames[k], in.now(), r.Param)
	}
}

// Hit is the single-value form of Should for hooks that need no Param.
func (in *Injector) Hit(k Kind) bool {
	hit, _ := in.Should(k)
	return hit
}

// Now returns the injector's current cycle reading — the same time base
// the rule windows use, exposed so hook sites (e.g. stall release) stay
// on one clock.
func (in *Injector) Now() uint64 {
	if in == nil {
		return 0
	}
	return in.now()
}

// TraceHash returns the running hash over every injected fault
// (kind × sequence × cycle). Identical seeds and workloads produce
// identical hashes; any divergence in when or what was injected changes
// it.
func (in *Injector) TraceHash() uint64 {
	if in == nil {
		return 0
	}
	return in.traceHash
}

// TraceLen returns the number of injected faults so far.
func (in *Injector) TraceLen() uint64 {
	if in == nil {
		return 0
	}
	return in.traceLen
}

// InjectedTotal sums injected faults across kinds.
func (in *Injector) InjectedTotal() uint64 {
	if in == nil {
		return 0
	}
	var t uint64
	for _, n := range in.Injected {
		t += n
	}
	return t
}

// Counts renders the per-kind opportunity/injection counters (only
// kinds with at least one opportunity), in kind order for deterministic
// output.
func (in *Injector) Counts() string {
	if in == nil {
		return "faults: disabled"
	}
	var b strings.Builder
	for k := Kind(0); k < KindCount; k++ {
		if in.Opportunities[k] == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%v=%d/%d", k, in.Injected[k], in.Opportunities[k])
	}
	if b.Len() == 0 {
		return "no fault opportunities"
	}
	return b.String()
}
